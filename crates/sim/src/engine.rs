//! The simulation engine: weakly fair interleaving with fault injection.
//!
//! [`Engine`] executes one [`DinerAlgorithm`] over one [`Topology`] under
//! one [`Scheduler`] and one [`FaultPlan`]. Each step it
//!
//! 1. applies the faults due at the current step,
//! 2. enumerates the enabled action instances of every live process (plus
//!    one arbitrary-step pseudo-move per maliciously crashing process),
//! 3. lets the scheduler pick one and executes its command atomically
//!    (composite atomicity, serial/central daemon — the paper's model),
//! 4. updates the service metrics and the exclusion monitor.
//!
//! Runs are fully deterministic given the seed, the scheduler and the
//! fault plan.
//!
//! # Enumeration modes
//!
//! The engine has two interchangeable hot paths selected by
//! [`EnumerationMode`]:
//!
//! * [`EnumerationMode::Naive`] re-derives everything from scratch each
//!   step — every guard of every process, the fairness-age map, the
//!   edge-scan exclusion monitor. It is the executable specification.
//! * [`EnumerationMode::Incremental`] (the default) exploits the model's
//!   locality: a step or fault at `p` can only change guard values inside
//!   `p`'s closed neighborhood (guards read a process's own local,
//!   neighbor locals and incident edge variables; `p` writes only its own
//!   local and incident edges — malicious steps included). The engine
//!   keeps a per-process cache of enabled moves and re-enumerates only
//!   the *dirty* processes, tracks fairness ages in a dense `Vec` indexed
//!   by `(pid, kind, slot)`, and maintains the eating-pairs monitor as
//!   running counters updated on phase transitions.
//!
//! Both modes produce bit-identical runs — same `StepOutcome` sequence,
//! metrics, traces and RNG consumption — which
//! `crates/sim/tests/incremental_equiv.rs` verifies over topology ×
//! seed × scheduler × fault-plan sweeps.

use std::collections::HashMap;
use std::hash::Hash;

use rand::rngs::StdRng;

use crate::algorithm::{ActionId, DinerAlgorithm, Move, Phase, SystemState, View, Write};
use crate::fault::{FaultKind, FaultPlan, Health, Resurrection};
use crate::graph::{ProcessId, Topology};
use crate::metrics::DinerMetrics;
use crate::predicate::{Snapshot, StatePredicate};
use crate::record::{self, Checkpoint, FlightRecorder, Recording, StepDecision, FORMAT_VERSION};
use crate::rng;
use crate::scheduler::{EnabledMove, LeastRecentScheduler, Scheduler};
use crate::telemetry::{CounterId, HistogramId, Telemetry, TelemetryKind};
use crate::trace::{Event, EventKind, Trace};
use crate::tracing::{CausalTracer, SpanKind};
use crate::workload::{AlwaysHungry, Workload};

/// Monomorphized [`record::state_digest`] captured as a plain function
/// pointer when the flight recorder is attached, so the `Hash` bounds
/// live only on the attach method — the engine itself stays bound-free.
type DigestFn<A> = fn(&SystemState<A>, &[Health]) -> u64;

/// Flight-recorder state boxed inside the engine (None = disabled; every
/// instrumented site is one null check, mirroring `TelemetryState`).
struct RecorderState<A: DinerAlgorithm> {
    rec: FlightRecorder,
    /// Algorithm label written to the recording header.
    label: String,
    /// Checkpoint cadence in steps.
    every: u64,
    digest: DigestFn<A>,
}

/// Telemetry plus the metric handles the engine's hot path uses, prepared
/// once at build time so instrumented sites pay an index, not a lookup.
/// Boxed inside the engine: the disabled path is a single null check.
struct TelemetryState {
    tele: Telemetry,
    /// Fire counter per action kind (indexed like `Algorithm::kinds`).
    action_fires: Vec<CounterId>,
    malicious_steps: CounterId,
    faults: CounterId,
    restarts: CounterId,
    phase_changes: CounterId,
    /// Writes rejected by the runtime contract check (non-neighbor edge
    /// or malicious write outside the capability).
    write_violations: CounterId,
    /// Steps spent hungry before each transition into `Eating`.
    hungry_to_eat: HistogramId,
}

impl TelemetryState {
    fn prepare<A: DinerAlgorithm>(mut tele: Telemetry, alg: &A) -> Box<Self> {
        let reg = tele.registry_mut();
        let action_fires = alg
            .kinds()
            .iter()
            .map(|k| reg.counter(&format!("engine.action.{}", k.name)))
            .collect();
        let malicious_steps = reg.counter("engine.malicious_steps");
        let faults = reg.counter("engine.faults");
        let restarts = reg.counter("engine.restarts");
        let phase_changes = reg.counter("engine.phase_changes");
        let write_violations = reg.counter("engine.write_violations");
        let hungry_to_eat = reg.histogram("engine.hungry_to_eat_steps");
        Box::new(TelemetryState {
            tele,
            action_fires,
            malicious_steps,
            faults,
            restarts,
            phase_changes,
            write_violations,
            hungry_to_eat,
        })
    }
}

/// What happened in one engine step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The scheduler fired this move.
    Executed(Move),
    /// No action instance was enabled (the step still advances time, so
    /// later faults and step-dependent workloads still occur).
    Quiescent,
}

/// Aggregate result of [`Engine::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Steps of simulated time that elapsed.
    pub steps: u64,
    /// Steps in which an action fired.
    pub executed: u64,
    /// Steps in which nothing was enabled.
    pub quiescent: u64,
}

/// How the engine computes the enabled-move set each step; see the
/// module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnumerationMode {
    /// Full re-enumeration every step — the executable specification the
    /// differential tests compare against.
    Naive,
    /// Dirty-set invalidation of per-process caches (default).
    #[default]
    Incremental,
}

/// Sentinel in the dense age table: the move is not currently enabled.
const NOT_ENABLED: u64 = u64::MAX;

/// Dense "first continuously enabled at step" table, indexed by
/// `(pid, action kind, neighbor slot)` with one extra slot per process
/// for the malicious pseudo-move, so admit/evict/lookup are O(1) array
/// accesses instead of `HashMap` operations.
struct AgeTable {
    kinds: usize,
    /// Start of each process's slot block; `base[n]` is the table size.
    /// The last slot of every block is the malicious pseudo-move.
    base: Vec<usize>,
    /// Start of each `(process, kind)` run inside the process block,
    /// flattened as `kind_base[p * kinds + kind]`.
    kind_base: Vec<usize>,
    ages: Vec<u64>,
}

impl AgeTable {
    fn new(topo: &Topology, kinds: &[crate::algorithm::ActionKind]) -> Self {
        let n = topo.len();
        let k = kinds.len();
        let mut base = Vec::with_capacity(n + 1);
        let mut kind_base = Vec::with_capacity(n * k);
        let mut off = 0usize;
        for p in 0..n {
            base.push(off);
            let deg = topo.degree(ProcessId(p));
            for kind in kinds {
                kind_base.push(off);
                off += if kind.per_neighbor { deg } else { 1 };
            }
            off += 1; // malicious pseudo-move
        }
        base.push(off);
        AgeTable {
            kinds: k,
            base,
            kind_base,
            ages: vec![NOT_ENABLED; off],
        }
    }

    /// Table index of a move. Strictly increasing along each process's
    /// enumeration order, and process-major overall — reconciliation
    /// relies on this to merge old/new cache lists with two pointers.
    #[inline]
    fn index(&self, mv: Move) -> usize {
        let p = mv.pid.index();
        if mv.action.is_malicious() {
            self.base[p + 1] - 1
        } else {
            self.kind_base[p * self.kinds + mv.action.kind] + mv.action.slot.unwrap_or(0)
        }
    }

    /// The step at which `mv` became continuously enabled.
    #[inline]
    fn first_enabled(&self, mv: Move) -> u64 {
        self.ages[self.index(mv)]
    }

    /// Evict `mv` (it was just executed).
    #[inline]
    fn evict(&mut self, mv: Move) {
        let i = self.index(mv);
        self.ages[i] = NOT_ENABLED;
    }

    /// Reconcile one process's recomputed enabled list against its old
    /// cached list: moves no longer enabled are evicted, newly (or re-)
    /// enabled moves are admitted at `step`, still-enabled moves keep
    /// their age. Both slices are in enumeration order, so their table
    /// indices are strictly increasing.
    fn reconcile(&mut self, old: &[Move], new: &[Move], step: u64) {
        let mut oi = 0;
        let mut ni = 0;
        while oi < old.len() && ni < new.len() {
            let io = self.index(old[oi]);
            let in_ = self.index(new[ni]);
            match io.cmp(&in_) {
                std::cmp::Ordering::Less => {
                    self.ages[io] = NOT_ENABLED;
                    oi += 1;
                }
                std::cmp::Ordering::Greater => {
                    debug_assert_eq!(self.ages[in_], NOT_ENABLED);
                    self.ages[in_] = step;
                    ni += 1;
                }
                std::cmp::Ordering::Equal => {
                    // Still enabled; re-admit if it was executed since
                    // (the naive path's `remove` + later `or_insert`).
                    if self.ages[io] == NOT_ENABLED {
                        self.ages[io] = step;
                    }
                    oi += 1;
                    ni += 1;
                }
            }
        }
        for &mv in &old[oi..] {
            let i = self.index(mv);
            self.ages[i] = NOT_ENABLED;
        }
        for &mv in &new[ni..] {
            let i = self.index(mv);
            if self.ages[i] == NOT_ENABLED {
                self.ages[i] = step;
            }
        }
    }
}

/// Builder for [`Engine`]; see [`Engine::builder`].
pub struct EngineBuilder<A: DinerAlgorithm> {
    alg: A,
    topo: Topology,
    workload: Box<dyn Workload>,
    sched: Box<dyn Scheduler>,
    faults: FaultPlan,
    seed: u64,
    record_trace: bool,
    initial_state: Option<SystemState<A>>,
    mode: EnumerationMode,
    telemetry: Option<Telemetry>,
    recorder: Option<(String, u64, DigestFn<A>)>,
    tracing: bool,
}

impl<A: DinerAlgorithm> EngineBuilder<A> {
    /// Set the workload (default: [`AlwaysHungry`]).
    #[must_use]
    pub fn workload(mut self, w: impl Workload + 'static) -> Self {
        self.workload = Box::new(w);
        self
    }

    /// Set the scheduler (default: [`LeastRecentScheduler`]).
    #[must_use]
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.sched = Box::new(s);
        self
    }

    /// Set the fault plan (default: no faults).
    #[must_use]
    pub fn faults(mut self, f: FaultPlan) -> Self {
        self.faults = f;
        self
    }

    /// Seed for every randomized engine component (state corruption,
    /// malicious steps). Default 0.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Record an event trace (default off).
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Select the enabled-move enumeration strategy (default:
    /// [`EnumerationMode::Incremental`]). Both modes produce identical
    /// runs; [`EnumerationMode::Naive`] exists as the reference.
    #[must_use]
    pub fn enumeration(mut self, mode: EnumerationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Start from an explicit state instead of the algorithm's legitimate
    /// initial state (scenario reproductions). Overridden by
    /// [`FaultPlan::from_arbitrary_state`].
    #[must_use]
    pub fn initial_state(mut self, state: SystemState<A>) -> Self {
        self.initial_state = Some(state);
        self
    }

    /// Attach an observability handle (default: none). Telemetry never
    /// touches the engine's RNG, scheduler or state, so an instrumented
    /// run is step-for-step identical to a bare one; read results back
    /// with [`Engine::telemetry`] or [`Engine::take_telemetry`].
    #[must_use]
    pub fn telemetry(mut self, tele: Telemetry) -> Self {
        self.telemetry = Some(tele);
        self
    }

    /// Attach a flight recorder (default: none), checkpointing every 256
    /// steps. `algorithm_label` names the algorithm in the recording
    /// header so replay tooling can rebuild it. Like telemetry, the
    /// recorder only observes — it never touches the RNG, scheduler or
    /// state — so a recorded run is step-identical to a bare one; read
    /// the result back with [`Engine::recording`].
    #[must_use]
    pub fn flight_recorder(self, algorithm_label: &str) -> Self
    where
        A::Local: Hash,
        A::Edge: Hash,
    {
        self.flight_recorder_every(algorithm_label, 256)
    }

    /// [`EngineBuilder::flight_recorder`] with an explicit checkpoint
    /// cadence (`every` steps between state digests; min 1).
    #[must_use]
    pub fn flight_recorder_every(mut self, algorithm_label: &str, every: u64) -> Self
    where
        A::Local: Hash,
        A::Edge: Hash,
    {
        self.recorder = Some((
            algorithm_label.to_string(),
            every.max(1),
            record::state_digest::<A>,
        ));
        self
    }

    /// Record a span-based causal trace (default off); see
    /// [`crate::tracing`]. Observer-effect-free like telemetry and the
    /// flight recorder; read back with [`Engine::tracer`] or
    /// [`Engine::take_tracer`].
    #[must_use]
    pub fn causal_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Construct the engine.
    pub fn build(self) -> Engine<A> {
        let mut rng = rng::rng(rng::subseed(self.seed, 0xE61E));
        let mut state = self
            .initial_state
            .unwrap_or_else(|| SystemState::initial(&self.alg, &self.topo));
        if self.faults.starts_arbitrary() {
            state.corrupt_all(&self.alg, &self.topo, &mut rng);
        }
        let n = self.topo.len();
        let mut health = vec![Health::Live; n];
        for &p in self.faults.initially_dead_processes() {
            health[p.index()] = Health::Dead;
        }
        let mut trace = Trace::new();
        trace.enable(self.record_trace);
        let ages = AgeTable::new(&self.topo, self.alg.kinds());
        let needs_now: Vec<bool> = (0..n)
            .map(|i| self.workload.needs(ProcessId(i), 0))
            .collect();
        let step_dependent_needs = self.workload.step_dependent();
        let telemetry = self
            .telemetry
            .map(|tele| TelemetryState::prepare(tele, &self.alg));
        let recorder = self.recorder.map(|(label, every, digest)| {
            Box::new(RecorderState {
                rec: FlightRecorder::new(),
                label,
                every,
                digest,
            })
        });
        let tracer = self
            .tracing
            .then(|| Box::new(CausalTracer::new(&self.topo)));
        // Schedule one checkpoint capture per snapshot restart, `age`
        // steps before the restart fires (clamped at the run start).
        let mut snap_schedule: Vec<(u64, usize)> = self
            .faults
            .events()
            .iter()
            .enumerate()
            .filter_map(|(i, ev)| match ev.kind {
                FaultKind::Restart {
                    state: Resurrection::Snapshot { age },
                } => Some((ev.at_step.saturating_sub(age), i)),
                _ => None,
            })
            .collect();
        snap_schedule.sort_unstable();
        let snapshots = vec![None; self.faults.events().len()];
        let mut engine = Engine {
            metrics: DinerMetrics::new(n),
            last_phase: (0..n)
                .map(|i| self.alg.phase(state.local(ProcessId(i))))
                .collect(),
            alg: self.alg,
            topo: self.topo,
            state,
            health,
            workload: self.workload,
            sched: self.sched,
            faults: self.faults,
            seed: self.seed,
            step: 0,
            executed: 0,
            quiescent: 0,
            rng,
            trace,
            first_enabled: HashMap::new(),
            mode: self.mode,
            fault_cursor: 0,
            cache: vec![Vec::new(); n],
            dirty_mask: vec![true; n],
            dirty: (0..n).collect(),
            ages,
            needs_now,
            step_dependent_needs,
            eat_pairs_total: 0,
            eat_pairs_live: 0,
            annotated: Vec::new(),
            scratch: Vec::new(),
            telemetry,
            recorder,
            tracer,
            snap_schedule,
            snap_cursor: 0,
            snapshots,
            write_violations: 0,
        };
        let (total, live) = engine.eating_pairs_scan();
        engine.eat_pairs_total = total;
        engine.eat_pairs_live = live;
        // Anchor the recording: a digest of the state before step 0, so
        // replay divergence in the initial state is caught immediately.
        if let Some(rs) = engine.recorder.as_deref_mut() {
            let d = (rs.digest)(&engine.state, &engine.health);
            rs.rec.push_checkpoint(0, d);
        }
        engine
    }
}

/// A deterministic single-threaded run of one algorithm over one topology.
pub struct Engine<A: DinerAlgorithm> {
    alg: A,
    topo: Topology,
    state: SystemState<A>,
    health: Vec<Health>,
    workload: Box<dyn Workload>,
    sched: Box<dyn Scheduler>,
    faults: FaultPlan,
    step: u64,
    executed: u64,
    quiescent: u64,
    rng: StdRng,
    trace: Trace,
    metrics: DinerMetrics,
    last_phase: Vec<Phase>,
    /// Naive-mode fairness ages: step at which each currently-enabled
    /// move first became (and stayed) enabled without being executed.
    first_enabled: HashMap<Move, u64>,
    mode: EnumerationMode,
    /// Cursor into `faults.events()` — everything before it has fired.
    fault_cursor: usize,
    /// Incremental mode: per-process cached enabled moves, in
    /// enumeration order.
    cache: Vec<Vec<Move>>,
    /// Which processes need re-enumeration (mask + stack, no dup pushes).
    dirty_mask: Vec<bool>,
    dirty: Vec<usize>,
    /// Incremental-mode fairness ages.
    ages: AgeTable,
    /// Last `needs()` evaluation per process (step-dependent rescan memo).
    needs_now: Vec<bool>,
    step_dependent_needs: bool,
    /// Running eating-pairs counters (all pairs / pairs with a live
    /// endpoint), maintained on phase transitions and deaths.
    eat_pairs_total: usize,
    eat_pairs_live: usize,
    /// Scratch buffers reused across steps to avoid per-step allocation.
    annotated: Vec<EnabledMove>,
    scratch: Vec<Move>,
    /// Engine seed, kept for the recording header.
    seed: u64,
    /// Observability (None = disabled; every site is one null check).
    telemetry: Option<Box<TelemetryState>>,
    /// Flight recorder (None = disabled; same pattern as telemetry).
    recorder: Option<Box<RecorderState<A>>>,
    /// Causal tracer (None = disabled; same pattern as telemetry).
    tracer: Option<Box<CausalTracer>>,
    /// Checkpoint schedule for snapshot restarts: `(capture_step, event
    /// index)` pairs sorted by step. Derived from the fault plan at build
    /// time, so each needed snapshot is captured exactly once.
    snap_schedule: Vec<(u64, usize)>,
    /// Cursor into `snap_schedule` — everything before it was captured.
    snap_cursor: usize,
    /// Captured local-state checkpoints, indexed like `faults.events()`
    /// (filled only for snapshot-restart events).
    snapshots: Vec<Option<A::Local>>,
    /// Writes rejected by the runtime write-contract check
    /// ([`crate::footprint::check_write`]): non-neighbor edge writes and
    /// malicious writes outside the capability. Such writes panic under
    /// `debug_assertions` and are dropped (and counted here) in release.
    write_violations: u64,
}

impl<A: DinerAlgorithm> Engine<A> {
    /// Start building an engine for `alg` on `topo`.
    pub fn builder(alg: A, topo: Topology) -> EngineBuilder<A> {
        EngineBuilder {
            alg,
            topo,
            workload: Box::new(AlwaysHungry),
            sched: Box::new(LeastRecentScheduler::new()),
            faults: FaultPlan::none(),
            seed: 0,
            record_trace: false,
            initial_state: None,
            mode: EnumerationMode::default(),
            telemetry: None,
            recorder: None,
            tracing: false,
        }
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref().map(|ts| &ts.tele)
    }

    /// Mutable access to the attached telemetry, if any.
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_deref_mut().map(|ts| &mut ts.tele)
    }

    /// Detach and return the telemetry (e.g. to fold one run's metrics
    /// into a report while the engine is dropped).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take().map(|ts| ts.tele)
    }

    /// Writes rejected so far by the runtime write-contract check
    /// (non-neighbor edge writes, malicious writes outside the
    /// capability). Always 0 for a contract-certified algorithm; only
    /// release builds can observe a nonzero value, since debug builds
    /// panic on the first violation.
    pub fn write_violations(&self) -> u64 {
        self.write_violations
    }

    /// The attached causal tracer, if any.
    pub fn tracer(&self) -> Option<&CausalTracer> {
        self.tracer.as_deref()
    }

    /// Detach and return the causal tracer.
    pub fn take_tracer(&mut self) -> Option<CausalTracer> {
        self.tracer.take().map(|b| *b)
    }

    /// Snapshot the flight recorder into a serializable [`Recording`]
    /// (None if no recorder is attached). A final checkpoint digesting
    /// the current state is appended if the cadence did not land on it,
    /// so replay always verifies the end state.
    pub fn recording(&self) -> Option<Recording> {
        let rs = self.recorder.as_deref()?;
        let mut checkpoints = rs.rec.checkpoints().to_vec();
        if checkpoints.last().map(|c| c.step) != Some(self.step) {
            checkpoints.push(Checkpoint {
                step: self.step,
                digest: (rs.digest)(&self.state, &self.health),
            });
        }
        Some(Recording {
            version: FORMAT_VERSION,
            algorithm: rs.label.clone(),
            scheduler: self.sched.name().to_string(),
            workload: self.workload.name().to_string(),
            mode: self.mode,
            seed: self.seed,
            topology_name: self.topo.name().to_string(),
            n: self.topo.len(),
            edges: self
                .topo
                .edges()
                .iter()
                .map(|&(a, b)| (a.index(), b.index()))
                .collect(),
            faults: self.faults.clone(),
            steps: self.step,
            decisions: rs.rec.decisions().to_vec(),
            fault_log: rs.rec.faults().to_vec(),
            checkpoints,
        })
    }

    /// The algorithm under simulation.
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The current variable state.
    pub fn state(&self) -> &SystemState<A> {
        &self.state
    }

    /// Per-process health.
    pub fn health(&self) -> &[Health] {
        &self.health
    }

    /// The current step counter (steps of simulated time so far).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The enumeration strategy this engine runs with.
    pub fn enumeration_mode(&self) -> EnumerationMode {
        self.mode
    }

    /// Service metrics accumulated so far.
    pub fn metrics(&self) -> &DinerMetrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (to enable/clear mid-run).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The diner phase of `p` in the current state.
    pub fn phase_of(&self, p: ProcessId) -> Phase {
        self.alg.phase(self.state.local(p))
    }

    /// Whether `p` has halted.
    pub fn is_dead(&self, p: ProcessId) -> bool {
        self.health[p.index()].is_dead()
    }

    /// All halted processes.
    pub fn dead_processes(&self) -> Vec<ProcessId> {
        self.topo.processes().filter(|&p| self.is_dead(p)).collect()
    }

    /// An immutable snapshot for predicate evaluation.
    pub fn snapshot(&self) -> Snapshot<'_, A> {
        Snapshot::new(&self.topo, &self.state, &self.health)
    }

    /// Evaluate a predicate on the current state.
    pub fn check<P: StatePredicate<A>>(&self, pred: &P) -> bool {
        pred.holds(&self.snapshot())
    }

    /// Pairs of neighbors simultaneously eating right now, as
    /// `(total, with_live_endpoint)` — Theorem 3 bounds the first,
    /// the `E` predicate says the second is eventually zero.
    ///
    /// O(1): returns running counters maintained on phase transitions,
    /// deaths and transient corruption. [`Engine::eating_pairs_scan`] is
    /// the O(|E|) reference recount.
    pub fn eating_pairs(&self) -> (usize, usize) {
        (self.eat_pairs_total, self.eat_pairs_live)
    }

    /// Reference O(|E|) edge scan for [`Engine::eating_pairs`] — used to
    /// (re)initialize the counters, by the naive-mode exclusion monitor,
    /// and by the differential tests to validate the counters.
    pub fn eating_pairs_scan(&self) -> (usize, usize) {
        let mut total = 0;
        let mut live = 0;
        for &(a, b) in self.topo.edges() {
            if self.phase_of(a) == Phase::Eating && self.phase_of(b) == Phase::Eating {
                total += 1;
                if !self.is_dead(a) || !self.is_dead(b) {
                    live += 1;
                }
            }
        }
        (total, live)
    }

    /// Enumerate the enabled moves in the current state, from scratch.
    pub fn enabled_moves(&self) -> Vec<Move> {
        let mut moves = Vec::new();
        for p in self.topo.processes() {
            self.enumerate_process(p, &mut moves);
        }
        moves
    }

    /// Append the enabled moves of `p` (in enumeration order: kinds in
    /// declaration order, per-neighbor slots ascending, or the single
    /// malicious pseudo-move) to `out`.
    fn enumerate_process(&self, p: ProcessId, out: &mut Vec<Move>) {
        match self.health[p.index()] {
            Health::Dead => {}
            Health::Byzantine { .. } => out.push(Move {
                pid: p,
                action: ActionId::MALICIOUS,
            }),
            Health::Live => {
                let needs = self.workload.needs(p, self.step);
                let view = View::new(&self.topo, &self.state, p, needs);
                for (ki, kind) in self.alg.kinds().iter().enumerate() {
                    if kind.per_neighbor {
                        for slot in 0..self.topo.degree(p) {
                            let a = ActionId::at_slot(ki, slot);
                            if self.alg.enabled(&view, a) {
                                out.push(Move { pid: p, action: a });
                            }
                        }
                    } else {
                        let a = ActionId::global(ki);
                        if self.alg.enabled(&view, a) {
                            out.push(Move { pid: p, action: a });
                        }
                    }
                }
            }
        }
    }

    /// Execute one step of the computation; see the module docs.
    pub fn step(&mut self) -> StepOutcome {
        let out = match self.mode {
            EnumerationMode::Naive => self.step_naive(),
            EnumerationMode::Incremental => self.step_incremental(),
        };
        // Flight recorder: executed moves are pushed inside
        // `execute_move` (which knows the `needs` bit); quiescent steps
        // and cadenced checkpoints are recorded here, after the step
        // counter advanced.
        if let Some(rs) = self.recorder.as_deref_mut() {
            if out == StepOutcome::Quiescent {
                rs.rec.push_decision(StepDecision::Quiescent);
            }
            if self.step.is_multiple_of(rs.every) {
                let d = (rs.digest)(&self.state, &self.health);
                rs.rec.push_checkpoint(self.step, d);
            }
        }
        out
    }

    /// The reference step: full re-enumeration, `HashMap` fairness ages,
    /// edge-scan exclusion monitor.
    fn step_naive(&mut self) -> StepOutcome {
        // The shared paths below still mark dirty processes; drain them so
        // the stack cannot grow across a long naive run.
        for i in self.dirty.drain(..) {
            self.dirty_mask[i] = false;
        }
        self.apply_due_faults();
        let enabled = self.enabled_moves();

        // Refresh fairness ages: drop moves no longer enabled, admit new.
        let step = self.step;
        self.first_enabled.retain(|m, _| enabled.contains(m));
        let annotated: Vec<EnabledMove> = enabled
            .iter()
            .map(|&mv| {
                let first = *self.first_enabled.entry(mv).or_insert(step);
                EnabledMove {
                    mv,
                    age: step - first + 1,
                }
            })
            .collect();

        if annotated.is_empty() {
            self.step += 1;
            self.quiescent += 1;
            return StepOutcome::Quiescent;
        }

        let choice = self.sched.pick(step, &annotated);
        assert!(
            choice < annotated.len(),
            "scheduler {} returned out-of-range index {choice}",
            self.sched.name()
        );
        let mv = annotated[choice].mv;
        self.execute_move(mv);
        self.first_enabled.remove(&mv);

        // Exclusion monitor.
        let (_, live_pairs) = self.eating_pairs_scan();
        self.metrics.on_exclusion_check(step, live_pairs);

        self.step += 1;
        self.executed += 1;
        StepOutcome::Executed(mv)
    }

    /// The incremental step: re-enumerate only dirty processes, O(1) age
    /// bookkeeping, counter-based exclusion monitor.
    fn step_incremental(&mut self) -> StepOutcome {
        self.apply_due_faults();
        let step = self.step;

        // Step-dependent workloads can flip any `needs()` between steps;
        // a changed needs bit only feeds that process's own guards.
        if self.step_dependent_needs {
            for i in 0..self.topo.len() {
                let need = self.workload.needs(ProcessId(i), step);
                if need != self.needs_now[i] {
                    self.needs_now[i] = need;
                    if !self.dirty_mask[i] {
                        self.dirty_mask[i] = true;
                        self.dirty.push(i);
                    }
                }
            }
        }

        // Re-enumerate dirty processes and reconcile their ages.
        while let Some(i) = self.dirty.pop() {
            self.dirty_mask[i] = false;
            let mut fresh = std::mem::take(&mut self.scratch);
            fresh.clear();
            self.enumerate_process(ProcessId(i), &mut fresh);
            self.ages.reconcile(&self.cache[i], &fresh, step);
            std::mem::swap(&mut self.cache[i], &mut fresh);
            self.scratch = fresh;
        }

        // Assemble the scheduler's view in the same process-major order
        // as the naive enumeration, reusing the scratch buffer.
        let mut annotated = std::mem::take(&mut self.annotated);
        annotated.clear();
        for list in &self.cache {
            for &mv in list {
                let first = self.ages.first_enabled(mv);
                debug_assert_ne!(first, NOT_ENABLED, "cached move {mv:?} has no age");
                annotated.push(EnabledMove {
                    mv,
                    age: step - first + 1,
                });
            }
        }

        if annotated.is_empty() {
            self.annotated = annotated;
            self.step += 1;
            self.quiescent += 1;
            return StepOutcome::Quiescent;
        }

        let choice = self.sched.pick(step, &annotated);
        assert!(
            choice < annotated.len(),
            "scheduler {} returned out-of-range index {choice}",
            self.sched.name()
        );
        let mv = annotated[choice].mv;
        self.annotated = annotated;
        self.execute_move(mv);
        self.ages.evict(mv);

        // Exclusion monitor, from the running counter.
        self.metrics.on_exclusion_check(step, self.eat_pairs_live);

        self.step += 1;
        self.executed += 1;
        StepOutcome::Executed(mv)
    }

    /// Run `steps` steps of simulated time.
    pub fn run(&mut self, steps: u64) -> RunSummary {
        let start_exec = self.executed;
        let start_quiet = self.quiescent;
        for _ in 0..steps {
            self.step();
        }
        RunSummary {
            steps,
            executed: self.executed - start_exec,
            quiescent: self.quiescent - start_quiet,
        }
    }

    /// Run until `pred` holds (checked before each step), at most
    /// `max_steps` further steps. Returns the step count at which the
    /// predicate first held.
    pub fn run_until<P: StatePredicate<A>>(&mut self, pred: &P, max_steps: u64) -> Option<u64> {
        let deadline = self.step + max_steps;
        loop {
            if pred.holds(&self.snapshot()) {
                return Some(self.step);
            }
            if self.step >= deadline {
                return None;
            }
            self.step();
        }
    }

    /// Run up to `max_steps` steps and report the first step from which
    /// `pred` held *continuously* through the horizon (the empirical
    /// convergence point for closed predicates). `None` if the predicate
    /// does not hold at the end of the horizon.
    pub fn convergence_step<P: StatePredicate<A>>(
        &mut self,
        pred: &P,
        max_steps: u64,
    ) -> Option<u64> {
        let mut since: Option<u64> = if pred.holds(&self.snapshot()) {
            Some(self.step)
        } else {
            None
        };
        for _ in 0..max_steps {
            self.step();
            if pred.holds(&self.snapshot()) {
                since.get_or_insert(self.step);
            } else {
                since = None;
            }
        }
        since
    }

    /// Mark a single process for re-enumeration.
    fn mark_dirty(&mut self, p: ProcessId) {
        let i = p.index();
        if !self.dirty_mask[i] {
            self.dirty_mask[i] = true;
            self.dirty.push(i);
        }
    }

    /// Mark `p` and its neighbors — the guard footprint of a write set
    /// confined to `p`'s local and incident edges.
    fn mark_dirty_closed(&mut self, p: ProcessId) {
        let topo = &self.topo;
        for &q in topo.closed_neighborhood(p) {
            let i = q.index();
            if !self.dirty_mask[i] {
                self.dirty_mask[i] = true;
                self.dirty.push(i);
            }
        }
    }

    fn mark_all_dirty(&mut self) {
        for i in 0..self.topo.len() {
            if !self.dirty_mask[i] {
                self.dirty_mask[i] = true;
                self.dirty.push(i);
            }
        }
    }

    /// Adjust the eating-pairs counters for `p` changing phase from
    /// `before` to `after` while every *other* entry of `last_phase` is
    /// current. Must run before `last_phase[p]` is updated and after any
    /// health change at `p` took effect.
    fn update_eating_pairs(&mut self, p: ProcessId, before: Phase, after: Phase) {
        let was = before == Phase::Eating;
        let now = after == Phase::Eating;
        if was == now {
            return;
        }
        let p_dead = self.health[p.index()].is_dead();
        let topo = &self.topo;
        for &q in topo.neighbors(p) {
            if self.last_phase[q.index()] != Phase::Eating {
                continue;
            }
            let live = !p_dead || !self.health[q.index()].is_dead();
            if now {
                self.eat_pairs_total += 1;
                if live {
                    self.eat_pairs_live += 1;
                }
            } else {
                self.eat_pairs_total -= 1;
                if live {
                    self.eat_pairs_live -= 1;
                }
            }
        }
    }

    /// Counter fix-up for an active process dying: eating pairs it shared
    /// with an already-dead eating neighbor stop counting as live. Call
    /// with `self.health[p]` already `Dead` and `last_phase[p]` still
    /// reflecting `p`'s phase at the moment of death.
    fn on_process_died(&mut self, p: ProcessId) {
        if self.last_phase[p.index()] != Phase::Eating {
            return;
        }
        let topo = &self.topo;
        for &q in topo.neighbors(p) {
            if self.last_phase[q.index()] == Phase::Eating && self.health[q.index()].is_dead() {
                self.eat_pairs_live -= 1;
            }
        }
    }

    /// Counter fix-up for a dead process coming back: eating pairs it
    /// shared with a dead eating neighbor count as live again. Call with
    /// `self.health[p]` already `Live` and `last_phase[p]` still
    /// reflecting `p`'s frozen phase at death (the exact mirror of
    /// [`Engine::on_process_died`]).
    fn on_process_revived(&mut self, p: ProcessId) {
        if self.last_phase[p.index()] != Phase::Eating {
            return;
        }
        let topo = &self.topo;
        for &q in topo.neighbors(p) {
            if self.last_phase[q.index()] == Phase::Eating && self.health[q.index()].is_dead() {
                self.eat_pairs_live += 1;
            }
        }
    }

    fn apply_due_faults(&mut self) {
        let step = self.step;
        // Capture any local-state checkpoints due at (or before) this
        // step, ahead of the faults: a same-step kill must not scribble
        // on the checkpoint a later restart restores.
        while let Some(&(at, idx)) = self.snap_schedule.get(self.snap_cursor) {
            if at > step {
                break;
            }
            let target = self.faults.events()[idx].target;
            self.snapshots[idx] = Some(self.state.local(target).clone());
            self.snap_cursor += 1;
        }
        let (start, end) = self.faults.due_span(self.fault_cursor, step);
        self.fault_cursor = end;
        for i in start..end {
            let ev = self.faults.events()[i];
            let span_before = self
                .tracer
                .is_some()
                .then(|| self.alg.phase(self.state.local(ev.target)));
            match ev.kind {
                FaultKind::Crash => {
                    let was_active = self.health[ev.target.index()].is_active();
                    self.health[ev.target.index()] = Health::Dead;
                    if was_active {
                        self.on_process_died(ev.target);
                        // Health is invisible to neighbor guards
                        // (crashes are undetectable); only the target's
                        // own move set changes.
                        self.mark_dirty(ev.target);
                    }
                }
                FaultKind::MaliciousCrash { steps } => {
                    if self.health[ev.target.index()].is_active() {
                        if steps == 0 {
                            self.health[ev.target.index()] = Health::Dead;
                            self.on_process_died(ev.target);
                        } else {
                            self.health[ev.target.index()] = Health::Byzantine { remaining: steps };
                        }
                        self.mark_dirty(ev.target);
                    }
                }
                FaultKind::TransientGlobal => {
                    self.state.corrupt_all(&self.alg, &self.topo, &mut self.rng);
                    self.resync_phases();
                    self.mark_all_dirty();
                }
                FaultKind::TransientLocal => {
                    self.state
                        .corrupt_process(&self.alg, &self.topo, &mut self.rng, ev.target);
                    let before = self.last_phase[ev.target.index()];
                    let after = self.alg.phase(self.state.local(ev.target));
                    self.update_eating_pairs(ev.target, before, after);
                    self.last_phase[ev.target.index()] = after;
                    self.mark_dirty_closed(ev.target);
                }
                FaultKind::Restart { state } => {
                    if self.health[ev.target.index()].is_dead() {
                        self.health[ev.target.index()] = Health::Live;
                        self.on_process_revived(ev.target);
                        match state {
                            Resurrection::Fresh => {
                                *self.state.local_mut(ev.target) =
                                    self.alg.init_local(&self.topo, ev.target);
                            }
                            Resurrection::Snapshot { .. } => {
                                if let Some(snap) = self.snapshots[i].clone() {
                                    *self.state.local_mut(ev.target) = snap;
                                }
                            }
                            Resurrection::Arbitrary { seed } => {
                                let mut r = rng::rng(rng::subseed(seed, 0x5EED));
                                self.state
                                    .corrupt_process(&self.alg, &self.topo, &mut r, ev.target);
                            }
                        }
                        let before = self.last_phase[ev.target.index()];
                        let after = self.alg.phase(self.state.local(ev.target));
                        self.update_eating_pairs(ev.target, before, after);
                        self.last_phase[ev.target.index()] = after;
                        // The resurrected state is neighbor-visible (unlike
                        // the health flip), so the whole closed neighborhood
                        // re-enumerates.
                        self.mark_dirty_closed(ev.target);
                        if let Some(ts) = self.telemetry.as_deref_mut() {
                            let id = ts.restarts;
                            ts.tele.registry_mut().inc(id);
                        }
                    }
                }
            }
            self.trace.record(Event {
                step,
                pid: ev.target,
                kind: EventKind::Fault(ev.kind),
            });
            if let Some(ts) = self.telemetry.as_deref_mut() {
                let id = ts.faults;
                ts.tele.registry_mut().inc(id);
                ts.tele.emit(step, ev.target, TelemetryKind::Fault(ev.kind));
            }
            if let Some(rs) = self.recorder.as_deref_mut() {
                rs.rec.push_fault(step, ev.target, ev.kind);
            }
            if let Some(before) = span_before {
                let after = self.alg.phase(self.state.local(ev.target));
                if let Some(tr) = self.tracer.as_deref_mut() {
                    tr.record_fault(&self.topo, step, ev.target, ev.kind, before, after);
                }
            }
        }
    }

    /// Rebuild `last_phase` and the eating-pairs counters from the state
    /// (after bulk corruption or at engine construction).
    fn resync_phases(&mut self) {
        for p in self.topo.processes() {
            self.last_phase[p.index()] = self.alg.phase(self.state.local(p));
        }
        let (total, live) = self.eating_pairs_scan();
        self.eat_pairs_total = total;
        self.eat_pairs_live = live;
    }

    fn execute_move(&mut self, mv: Move) {
        let pid = mv.pid;
        let before = self.alg.phase(self.state.local(pid));
        let (writes, needs): (Vec<Write<A>>, bool) = if mv.action.is_malicious() {
            let view = View::new(&self.topo, &self.state, pid, false);
            let w = self.alg.malicious_writes(&view, &mut self.rng);
            let mut died = false;
            match &mut self.health[pid.index()] {
                Health::Byzantine { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.health[pid.index()] = Health::Dead;
                        died = true;
                    }
                }
                other => unreachable!("malicious move for non-byzantine process: {other:?}"),
            }
            if died {
                self.on_process_died(pid);
            }
            self.trace.record(Event {
                step: self.step,
                pid,
                kind: EventKind::MaliciousStep,
            });
            if let Some(ts) = self.telemetry.as_deref_mut() {
                let id = ts.malicious_steps;
                ts.tele.registry_mut().inc(id);
                ts.tele.emit(self.step, pid, TelemetryKind::MaliciousStep);
            }
            if let Some(rs) = self.recorder.as_deref_mut() {
                rs.rec.push_decision(StepDecision::Malicious { pid });
            }
            (w, false)
        } else {
            let needs = self.workload.needs(pid, self.step);
            let view = View::new(&self.topo, &self.state, pid, needs);
            debug_assert!(
                self.alg.enabled(&view, mv.action),
                "scheduler fired a disabled move {mv:?}"
            );
            let w = self.alg.execute(&view, mv.action);
            let kind = self.alg.kinds()[mv.action.kind];
            self.trace.record(Event {
                step: self.step,
                pid,
                kind: EventKind::Action {
                    kind: mv.action.kind,
                    slot: mv.action.slot,
                    name: kind.name,
                },
            });
            if let Some(ts) = self.telemetry.as_deref_mut() {
                let id = ts.action_fires[mv.action.kind];
                ts.tele.registry_mut().inc(id);
                ts.tele.emit(
                    self.step,
                    pid,
                    TelemetryKind::Action {
                        name: kind.name,
                        slot: mv.action.slot,
                    },
                );
            }
            if let Some(rs) = self.recorder.as_deref_mut() {
                rs.rec.push_decision(StepDecision::Move {
                    pid,
                    kind: mv.action.kind,
                    slot: mv.action.slot,
                    needs,
                });
            }
            (w, needs)
        };

        // Runtime write-contract check (the dynamic counterpart of the
        // `footprint` locality certifier): adjacency for every edge
        // write, capability for malicious ones. Violations panic in
        // debug builds; release builds reject the write and count it, so
        // fuzzing surfaces contract breaches without crashing soaks.
        let malicious = mv.action.is_malicious();
        for w in writes {
            if let Some(v) =
                crate::footprint::check_write(&self.alg, &self.topo, pid, malicious, &w)
            {
                if cfg!(debug_assertions) {
                    panic!("write contract violation: {v}");
                }
                self.write_violations += 1;
                if let Some(ts) = self.telemetry.as_deref_mut() {
                    let id = ts.write_violations;
                    ts.tele.registry_mut().inc(id);
                }
                continue;
            }
            match w {
                Write::Local(l) => *self.state.local_mut(pid) = l,
                Write::Edge { neighbor, value } => {
                    let e = self
                        .topo
                        .edge_between(pid, neighbor)
                        .expect("checked adjacent above");
                    *self.state.edge_mut(e) = value;
                }
            }
        }

        let after = self.alg.phase(self.state.local(pid));
        self.update_eating_pairs(pid, before, after);
        self.last_phase[pid.index()] = after;
        if before != after {
            if let Some(ts) = self.telemetry.as_deref_mut() {
                let id = ts.phase_changes;
                ts.tele.registry_mut().inc(id);
                if after == Phase::Eating {
                    if let Some(since) = self.metrics.hungry_since(pid) {
                        let hist = ts.hungry_to_eat;
                        ts.tele
                            .registry_mut()
                            .record(hist, self.step.saturating_sub(since));
                    }
                }
                ts.tele.emit(
                    self.step,
                    pid,
                    TelemetryKind::PhaseChange {
                        from: before,
                        to: after,
                    },
                );
            }
            self.metrics.on_phase_change(pid, before, after, self.step);
            if after == Phase::Eating {
                self.workload.note_eat(pid, self.step);
            }
        }
        if self.tracer.is_some() {
            let span_kind = if mv.action.is_malicious() {
                SpanKind::Malicious
            } else {
                SpanKind::Action {
                    name: self.alg.kinds()[mv.action.kind].name,
                    slot: mv.action.slot,
                }
            };
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.record_action(&self.topo, self.step, pid, span_kind, needs, before, after);
            }
        }
        // The write set was confined to pid's local + incident edges, so
        // only the closed neighborhood's guards can have changed.
        self.mark_dirty_closed(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::fault::FaultPlan;
    use crate::predicate::FnPredicate;
    use crate::scheduler::RandomScheduler;
    use crate::toy::{ToyDiners, TOY_ENTER, TOY_EXIT, TOY_JOIN};
    use crate::workload::{NeverHungry, QuotaWorkload};

    fn toy_engine(n: usize) -> Engine<ToyDiners> {
        Engine::builder(ToyDiners, Topology::line(n))
            .scheduler(RandomScheduler::new(1))
            .seed(1)
            .build()
    }

    #[test]
    fn never_hungry_system_is_quiescent() {
        let mut e = Engine::builder(ToyDiners, Topology::ring(4))
            .workload(NeverHungry)
            .build();
        let s = e.run(10);
        assert_eq!(s.executed, 0);
        assert_eq!(s.quiescent, 10);
        assert_eq!(e.step_count(), 10);
    }

    #[test]
    fn everyone_eats_under_fair_scheduling() {
        let mut e = toy_engine(5);
        e.run(2_000);
        for p in e.topology().processes() {
            assert!(e.metrics().eats_of(p) > 0, "{p} never ate");
        }
        assert_eq!(e.metrics().violation_step_count(), 0);
    }

    #[test]
    fn quota_workload_quiesces_after_meals() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .workload(QuotaWorkload::uniform(3, 2))
            .build();
        e.run(500);
        for p in e.topology().processes() {
            assert_eq!(e.metrics().eats_of(p), 2, "{p} should eat exactly twice");
        }
        // After quotas are filled, nothing is enabled.
        assert!(e.enabled_moves().is_empty());
    }

    #[test]
    fn crash_fault_halts_a_process() {
        let mut e = Engine::builder(ToyDiners, Topology::line(4))
            .faults(FaultPlan::new().crash(10, 0))
            .record_trace(true)
            .build();
        e.run(100);
        assert!(e.is_dead(ProcessId(0)));
        assert_eq!(e.dead_processes(), vec![ProcessId(0)]);
        // Dead process takes no further actions.
        let actions_after: Vec<_> = e
            .trace()
            .actions_of(ProcessId(0))
            .into_iter()
            .filter(|(s, _)| *s >= 10)
            .collect();
        assert!(
            actions_after.is_empty(),
            "dead process acted: {actions_after:?}"
        );
    }

    #[test]
    fn malicious_crash_takes_exactly_k_steps_then_halts() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .faults(FaultPlan::new().malicious_crash(0, 1, 3))
            .record_trace(true)
            .build();
        e.run(200);
        assert!(e.is_dead(ProcessId(1)));
        let malicious = e
            .trace()
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::MaliciousStep))
            .count();
        assert_eq!(malicious, 3);
    }

    #[test]
    fn malicious_crash_with_zero_steps_is_benign() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .faults(FaultPlan::new().malicious_crash(5, 2, 0))
            .build();
        e.run(50);
        assert!(e.is_dead(ProcessId(2)));
    }

    #[test]
    fn initially_dead_never_acts() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .faults(FaultPlan::new().initially_dead(1))
            .record_trace(true)
            .build();
        e.run(200);
        assert!(e.trace().actions_of(ProcessId(1)).is_empty());
        // Its neighbors can still eat (it died thinking).
        assert!(e.metrics().eats_of(ProcessId(0)) > 0);
    }

    #[test]
    fn arbitrary_start_is_deterministic_in_seed() {
        let build = |seed| {
            Engine::builder(ToyDiners, Topology::ring(6))
                .faults(FaultPlan::new().from_arbitrary_state())
                .seed(seed)
                .build()
        };
        assert_eq!(build(7).state(), build(7).state());
        // Over several seeds, at least one differs from the legitimate
        // initial state (all thinking).
        let legit = SystemState::initial(&ToyDiners, &Topology::ring(6));
        assert!((0..10).any(|s| build(s).state() != &legit));
    }

    #[test]
    fn transient_global_corrupts_state() {
        let mut e = Engine::builder(ToyDiners, Topology::ring(8))
            .workload(NeverHungry)
            .faults(FaultPlan::new().transient_global(5))
            .seed(3)
            .build();
        e.run(5);
        let before = e.state().clone();
        e.run(1);
        assert_ne!(&before, e.state(), "transient fault should perturb state");
    }

    #[test]
    fn run_until_and_convergence() {
        let mut e = toy_engine(4);
        let p0_ate = FnPredicate::new::<ToyDiners>("p0-eating", |s: &Snapshot<'_, ToyDiners>| {
            *s.state.local(ProcessId(0)) == Phase::Eating
        });
        let at = e.run_until(&p0_ate, 10_000);
        assert!(at.is_some(), "p0 eventually eats");

        // Toy diners converge to "no live neighbors both eating" trivially.
        let mut e2 = toy_engine(4);
        let excl = FnPredicate::new::<ToyDiners>("exclusion", |s: &Snapshot<'_, ToyDiners>| {
            s.topo.edges().iter().all(|&(a, b)| {
                !(*s.state.local(a) == Phase::Eating && *s.state.local(b) == Phase::Eating)
            })
        });
        assert!(e2.convergence_step(&excl, 500).is_some());
    }

    #[test]
    fn eating_pairs_counts() {
        let t = Topology::line(3);
        let mut st: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &t);
        *st.local_mut(ProcessId(0)) = Phase::Eating;
        *st.local_mut(ProcessId(1)) = Phase::Eating;
        let e = Engine::builder(ToyDiners, t).initial_state(st).build();
        assert_eq!(e.eating_pairs(), (1, 1));
        assert_eq!(e.eating_pairs_scan(), (1, 1));
    }

    #[test]
    fn enabled_moves_reflect_guards() {
        let e = toy_engine(3);
        let moves = e.enabled_moves();
        // Initially everyone is thinking and hungry-able: only joins.
        assert_eq!(moves.len(), 3);
        assert!(moves.iter().all(|m| m.action.kind == TOY_JOIN));
    }

    #[test]
    fn step_outcome_reports_move() {
        let mut e = toy_engine(2);
        match e.step() {
            StepOutcome::Executed(m) => assert_eq!(m.action.kind, TOY_JOIN),
            StepOutcome::Quiescent => panic!("join should be enabled"),
        }
    }

    #[test]
    fn phases_and_metrics_agree() {
        let mut e = toy_engine(2);
        e.run(100);
        let total: u64 = e
            .topology()
            .processes()
            .map(|p| e.metrics().eats_of(p))
            .sum();
        assert!(total > 0);
        // Whoever is eating now is counted in current phase queries.
        for p in e.topology().processes() {
            let _ = e.phase_of(p);
        }
        let _ = (TOY_ENTER, TOY_EXIT);
    }

    // ---- incremental-mode specifics ----

    use std::cell::RefCell;
    use std::rc::Rc;

    /// Scheduler that logs every annotated enabled set it is offered and
    /// delegates the actual choice.
    struct ProbeScheduler {
        log: Rc<RefCell<Vec<Vec<EnabledMove>>>>,
        inner: RandomScheduler,
    }

    impl Scheduler for ProbeScheduler {
        fn pick(&mut self, step: u64, enabled: &[EnabledMove]) -> usize {
            self.log.borrow_mut().push(enabled.to_vec());
            self.inner.pick(step, enabled)
        }
        fn name(&self) -> &str {
            "probe"
        }
    }

    fn probe_run(mode: EnumerationMode, steps: u64) -> Vec<Vec<EnabledMove>> {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::builder(ToyDiners, Topology::line(4))
            .scheduler(ProbeScheduler {
                log: Rc::clone(&log),
                inner: RandomScheduler::new(9),
            })
            .enumeration(mode)
            .seed(9)
            .build();
        e.run(steps);
        drop(e);
        Rc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn ages_match_naive_move_for_move() {
        // The satellite guarantee for the dense age table: both engines
        // offer the scheduler identical (move, age) lists at every step.
        let naive = probe_run(EnumerationMode::Naive, 300);
        let incremental = probe_run(EnumerationMode::Incremental, 300);
        assert_eq!(naive.len(), incremental.len());
        for (s, (a, b)) in naive.iter().zip(&incremental).enumerate() {
            assert_eq!(a, b, "annotated sets diverge at pick {s}");
        }
    }

    #[test]
    fn ages_grow_while_enabled_and_reset_on_reenable() {
        // line(4): p3's join stays enabled (and un-executed) while other
        // moves fire → its age must grow monotonically; a move that is
        // executed and later re-enabled must restart at age 1.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::builder(ToyDiners, Topology::line(4))
            .scheduler(ProbeScheduler {
                log: Rc::clone(&log),
                inner: RandomScheduler::new(3),
            })
            .seed(3)
            .build();
        e.run(400);
        drop(e);
        let log = Rc::try_unwrap(log).unwrap().into_inner();

        // This run is never quiescent (some join/enter/exit is always
        // enabled), so consecutive picks are consecutive steps:
        // still-enabled moves must age by exactly 1, and a move admitted
        // after an absence must restart at age 1 — even if it had aged
        // before (the stale age must not survive the disabled interval).
        let mut seen_aged: std::collections::HashSet<Move> = Default::default();
        let mut seen_reset = false;
        for w in log.windows(2) {
            for em in &w[1] {
                match w[0].iter().find(|p| p.mv == em.mv) {
                    Some(old) => {
                        assert_eq!(em.age, old.age + 1, "{:?} did not age monotonically", em.mv)
                    }
                    None => {
                        assert_eq!(em.age, 1, "{:?} kept a stale age", em.mv);
                        if seen_aged.contains(&em.mv) {
                            seen_reset = true;
                        }
                    }
                }
                if em.age > 1 {
                    seen_aged.insert(em.mv);
                }
            }
        }
        assert!(seen_reset, "expected at least one age reset over the run");
    }

    #[test]
    fn age_table_reconcile_semantics() {
        let topo = Topology::line(3);
        let kinds = ToyDiners.kinds();
        let mut t = AgeTable::new(&topo, kinds);
        let join = |p: usize| Move {
            pid: ProcessId(p),
            action: ActionId::global(TOY_JOIN),
        };
        let enter = |p: usize| Move {
            pid: ProcessId(p),
            action: ActionId::global(TOY_ENTER),
        };
        let mal = |p: usize| Move {
            pid: ProcessId(p),
            action: ActionId::MALICIOUS,
        };

        // Admit two moves at step 5.
        t.reconcile(&[], &[join(1), enter(1)], 5);
        assert_eq!(t.first_enabled(join(1)), 5);
        assert_eq!(t.first_enabled(enter(1)), 5);

        // Still enabled at step 8: ages preserved, not reset.
        t.reconcile(&[join(1), enter(1)], &[join(1), enter(1)], 8);
        assert_eq!(t.first_enabled(join(1)), 5);

        // enter drops out, join survives, malicious pseudo-move appears.
        t.reconcile(&[join(1), enter(1)], &[join(1), mal(1)], 9);
        assert_eq!(t.first_enabled(join(1)), 5);
        assert_eq!(t.first_enabled(enter(1)), NOT_ENABLED);
        assert_eq!(t.first_enabled(mal(1)), 9);

        // Executed (evicted) then still enabled → re-admitted fresh.
        t.evict(join(1));
        t.reconcile(&[join(1), mal(1)], &[join(1), mal(1)], 11);
        assert_eq!(t.first_enabled(join(1)), 11, "re-enabled move restarts");
        assert_eq!(t.first_enabled(mal(1)), 9, "untouched move keeps age");

        // Other processes' slots are independent.
        assert_eq!(t.first_enabled(join(0)), NOT_ENABLED);
        assert_eq!(t.first_enabled(join(2)), NOT_ENABLED);
    }

    #[test]
    fn eating_pair_counters_track_scan_under_faults() {
        // Stress the running counters against the reference scan across
        // malicious crashes, benign crashes and transient corruption.
        for seed in 0..4u64 {
            let mut e = Engine::builder(ToyDiners, Topology::ring(6))
                .scheduler(RandomScheduler::new(seed))
                .faults(
                    FaultPlan::new()
                        .malicious_crash(20, 1, 5)
                        .crash(60, 3)
                        .transient_local(90, 4)
                        .transient_global(120),
                )
                .seed(seed)
                .build();
            for _ in 0..300 {
                e.step();
                assert_eq!(
                    e.eating_pairs(),
                    e.eating_pairs_scan(),
                    "counter drifted from scan at step {} (seed {seed})",
                    e.step_count()
                );
            }
        }
    }

    #[test]
    fn modes_agree_on_a_faulty_run() {
        // Smoke-level differential check (the full sweep lives in
        // tests/incremental_equiv.rs): identical outcomes, state, metrics.
        let build = |mode| {
            Engine::builder(ToyDiners, Topology::ring(5))
                .scheduler(RandomScheduler::new(7))
                .faults(
                    FaultPlan::new()
                        .malicious_crash(15, 2, 4)
                        .crash(40, 0)
                        .transient_global(70),
                )
                .enumeration(mode)
                .seed(7)
                .build()
        };
        let mut a = build(EnumerationMode::Naive);
        let mut b = build(EnumerationMode::Incremental);
        for step in 0..500 {
            assert_eq!(a.step(), b.step(), "diverged at step {step}");
        }
        assert_eq!(a.state(), b.state());
        assert_eq!(a.health(), b.health());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn default_mode_is_incremental() {
        let e = toy_engine(3);
        assert_eq!(e.enumeration_mode(), EnumerationMode::Incremental);
    }

    #[test]
    fn restart_revives_a_crashed_process() {
        let mut e = Engine::builder(ToyDiners, Topology::line(4))
            .faults(FaultPlan::new().crash(10, 0).restart_fresh(100, 0))
            .record_trace(true)
            .telemetry(Telemetry::new())
            .build();
        e.run(2_000);
        assert!(!e.is_dead(ProcessId(0)), "restart did not land");
        assert!(e.dead_processes().is_empty());
        // The reborn process acts again.
        let acted_after = e
            .trace()
            .actions_of(ProcessId(0))
            .into_iter()
            .filter(|(s, _)| *s >= 100)
            .count();
        assert!(acted_after > 0, "reborn process never acted");
        assert_eq!(
            e.telemetry()
                .and_then(|t| t.registry().counter_value("engine.restarts")),
            Some(1)
        );
    }

    #[test]
    fn same_step_crash_restart_nets_to_immediate_rebirth() {
        // Restarts order after kills at the same step (fault.rs), so the
        // pair applies as crash-then-revive within one step.
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .faults(FaultPlan::new().crash(50, 1).restart_fresh(50, 1))
            .record_trace(true)
            .build();
        e.run(500);
        assert!(!e.is_dead(ProcessId(1)));
        assert!(
            e.trace()
                .actions_of(ProcessId(1))
                .into_iter()
                .any(|(s, _)| s >= 50),
            "process must keep acting after the same-step crash+restart"
        );
    }

    #[test]
    fn restart_of_a_live_process_is_a_no_op() {
        let build = |faults| {
            Engine::builder(ToyDiners, Topology::ring(5))
                .scheduler(RandomScheduler::new(3))
                .faults(faults)
                .seed(3)
                .build()
        };
        let mut a = build(FaultPlan::none());
        let mut b = build(FaultPlan::new().restart_fresh(100, 2));
        a.run(1_000);
        b.run(1_000);
        assert_eq!(a.state(), b.state(), "no-op restart perturbed the run");
        assert_eq!(a.health(), b.health());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn snapshot_restart_restores_the_checkpointed_local() {
        // Quota workload quiesces after one meal each, freezing locals.
        // The checkpoint (age 350 before the restart at 900) lands at
        // step 550 — before the transient corrupts the victim at 600 —
        // so the resurrected local must equal the step-550 value even
        // though the victim died holding corrupted state.
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .workload(QuotaWorkload::uniform(3, 1))
            .scheduler(RandomScheduler::new(1))
            .seed(9)
            .faults(
                FaultPlan::new()
                    .transient_local(600, 1)
                    .crash(700, 1)
                    .restart_snapshot(900, 1, 350),
            )
            .build();
        e.run(550);
        let checkpointed = *e.state().local(ProcessId(1));
        e.run(200); // corrupted at 600, dead at 700
        assert!(e.is_dead(ProcessId(1)));
        e.run(300); // restored at 900
        assert!(!e.is_dead(ProcessId(1)));
        assert_eq!(
            e.state().local(ProcessId(1)),
            &checkpointed,
            "snapshot resurrection must restore the checkpointed local"
        );
    }

    #[test]
    fn arbitrary_restart_is_deterministic_in_its_own_seed() {
        let build = |restart_seed| {
            Engine::builder(ToyDiners, Topology::ring(5))
                .scheduler(RandomScheduler::new(2))
                .seed(2)
                .faults(
                    FaultPlan::new()
                        .crash(100, 3)
                        .restart_arbitrary(200, 3, restart_seed),
                )
                .build()
        };
        let mut a = build(77);
        let mut b = build(77);
        a.run(201);
        b.run(201);
        assert_eq!(a.state(), b.state(), "same seed must resurrect equally");
        // The resurrection stream is its own: across seeds, at least one
        // rebirth lands in a different local state.
        let differs = (0..8u64).any(|s| {
            let mut c = build(1_000 + s);
            c.run(201);
            c.state().local(ProcessId(3)) != a.state().local(ProcessId(3))
        });
        assert!(differs, "arbitrary resurrection ignored its seed");
    }

    #[test]
    fn eating_pair_counters_survive_crash_restart_storms() {
        for seed in 0..6 {
            let mut e = Engine::builder(ToyDiners, Topology::ring(6))
                .scheduler(RandomScheduler::new(seed))
                .seed(seed)
                .faults(
                    FaultPlan::new()
                        .crash(50, 1)
                        .restart_fresh(150, 1)
                        .malicious_crash(200, 4, 5)
                        .restart_arbitrary(350, 4, seed)
                        .crash(400, 2)
                        .restart_snapshot(520, 2, 60),
                )
                .build();
            for _ in 0..700 {
                e.step();
                assert_eq!(
                    e.eating_pairs(),
                    e.eating_pairs_scan(),
                    "counter drifted from scan at step {} (seed {seed})",
                    e.step_count()
                );
            }
        }
    }

    #[test]
    fn modes_agree_on_a_restart_heavy_run() {
        let build = |mode| {
            Engine::builder(ToyDiners, Topology::ring(5))
                .scheduler(RandomScheduler::new(11))
                .faults(
                    FaultPlan::new()
                        .malicious_crash(15, 2, 4)
                        .restart_fresh(90, 2)
                        .crash(40, 0)
                        .restart_arbitrary(160, 0, 5)
                        .crash(220, 3)
                        .restart_snapshot(300, 3, 100),
                )
                .enumeration(mode)
                .seed(11)
                .build()
        };
        let mut a = build(EnumerationMode::Naive);
        let mut b = build(EnumerationMode::Incremental);
        for step in 0..600 {
            assert_eq!(a.step(), b.step(), "diverged at step {step}");
        }
        assert_eq!(a.state(), b.state());
        assert_eq!(a.health(), b.health());
        assert_eq!(a.metrics(), b.metrics());
    }

    // ---- runtime write-contract enforcement (satellite of the footprint
    // certification work; the static counterpart lives in footprint.rs) --

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "write contract violation")]
    fn engine_rejects_non_neighbor_edge_writes() {
        use crate::footprint::testbad::FarWriter;
        // far-grab writes the p0–? edge two hops out on a line; the
        // write check must refuse it rather than corrupt the far edge.
        let mut e = Engine::builder(FarWriter, Topology::line(3))
            .scheduler(RandomScheduler::new(3))
            .seed(3)
            .build();
        e.run(20);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "write contract violation")]
    fn engine_rejects_malicious_writes_outside_capability() {
        use crate::footprint::testbad::RogueMalicious;
        // rogue-malicious writes a shared edge during its byzantine
        // phase while declaring the default (empty) capability.
        let mut e = Engine::builder(RogueMalicious, Topology::line(3))
            .scheduler(RandomScheduler::new(3))
            .faults(FaultPlan::new().malicious_crash(1, 1, 2))
            .seed(3)
            .build();
        e.run(20);
    }

    #[test]
    fn well_behaved_runs_count_no_write_violations() {
        let mut e = Engine::builder(ToyDiners, Topology::ring(5))
            .scheduler(RandomScheduler::new(7))
            .faults(FaultPlan::new().malicious_crash(10, 2, 3))
            .telemetry(Telemetry::new())
            .seed(7)
            .build();
        e.run(500);
        assert_eq!(e.write_violations(), 0);
        assert_eq!(
            e.telemetry()
                .and_then(|t| t.registry().counter_value("engine.write_violations")),
            Some(0)
        );
    }
}
