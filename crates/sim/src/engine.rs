//! The simulation engine: weakly fair interleaving with fault injection.
//!
//! [`Engine`] executes one [`DinerAlgorithm`] over one [`Topology`] under
//! one [`Scheduler`] and one [`FaultPlan`]. Each step it
//!
//! 1. applies the faults due at the current step,
//! 2. enumerates the enabled action instances of every live process (plus
//!    one arbitrary-step pseudo-move per maliciously crashing process),
//! 3. lets the scheduler pick one and executes its command atomically
//!    (composite atomicity, serial/central daemon — the paper's model),
//! 4. updates the service metrics and the exclusion monitor.
//!
//! Runs are fully deterministic given the seed, the scheduler and the
//! fault plan.

use std::collections::HashMap;

use rand::rngs::StdRng;

use crate::algorithm::{ActionId, DinerAlgorithm, Move, Phase, SystemState, View, Write};
use crate::fault::{FaultKind, FaultPlan, Health};
use crate::graph::{ProcessId, Topology};
use crate::metrics::DinerMetrics;
use crate::predicate::{Snapshot, StatePredicate};
use crate::rng;
use crate::scheduler::{EnabledMove, LeastRecentScheduler, Scheduler};
use crate::trace::{Event, EventKind, Trace};
use crate::workload::{AlwaysHungry, Workload};

/// What happened in one engine step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The scheduler fired this move.
    Executed(Move),
    /// No action instance was enabled (the step still advances time, so
    /// later faults and step-dependent workloads still occur).
    Quiescent,
}

/// Aggregate result of [`Engine::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Steps of simulated time that elapsed.
    pub steps: u64,
    /// Steps in which an action fired.
    pub executed: u64,
    /// Steps in which nothing was enabled.
    pub quiescent: u64,
}

/// Builder for [`Engine`]; see [`Engine::builder`].
pub struct EngineBuilder<A: DinerAlgorithm> {
    alg: A,
    topo: Topology,
    workload: Box<dyn Workload>,
    sched: Box<dyn Scheduler>,
    faults: FaultPlan,
    seed: u64,
    record_trace: bool,
    initial_state: Option<SystemState<A>>,
}

impl<A: DinerAlgorithm> EngineBuilder<A> {
    /// Set the workload (default: [`AlwaysHungry`]).
    #[must_use]
    pub fn workload(mut self, w: impl Workload + 'static) -> Self {
        self.workload = Box::new(w);
        self
    }

    /// Set the scheduler (default: [`LeastRecentScheduler`]).
    #[must_use]
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.sched = Box::new(s);
        self
    }

    /// Set the fault plan (default: no faults).
    #[must_use]
    pub fn faults(mut self, f: FaultPlan) -> Self {
        self.faults = f;
        self
    }

    /// Seed for every randomized engine component (state corruption,
    /// malicious steps). Default 0.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Record an event trace (default off).
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Start from an explicit state instead of the algorithm's legitimate
    /// initial state (scenario reproductions). Overridden by
    /// [`FaultPlan::from_arbitrary_state`].
    #[must_use]
    pub fn initial_state(mut self, state: SystemState<A>) -> Self {
        self.initial_state = Some(state);
        self
    }

    /// Construct the engine.
    pub fn build(self) -> Engine<A> {
        let mut rng = rng::rng(rng::subseed(self.seed, 0xE61E));
        let mut state = self
            .initial_state
            .unwrap_or_else(|| SystemState::initial(&self.alg, &self.topo));
        if self.faults.starts_arbitrary() {
            state.corrupt_all(&self.alg, &self.topo, &mut rng);
        }
        let n = self.topo.len();
        let mut health = vec![Health::Live; n];
        for &p in self.faults.initially_dead_processes() {
            health[p.index()] = Health::Dead;
        }
        let mut trace = Trace::new();
        trace.enable(self.record_trace);
        Engine {
            metrics: DinerMetrics::new(n),
            last_phase: (0..n)
                .map(|i| self.alg.phase(state.local(ProcessId(i))))
                .collect(),
            alg: self.alg,
            topo: self.topo,
            state,
            health,
            workload: self.workload,
            sched: self.sched,
            faults: self.faults,
            step: 0,
            executed: 0,
            quiescent: 0,
            rng,
            trace,
            first_enabled: HashMap::new(),
        }
    }
}

/// A deterministic single-threaded run of one algorithm over one topology.
pub struct Engine<A: DinerAlgorithm> {
    alg: A,
    topo: Topology,
    state: SystemState<A>,
    health: Vec<Health>,
    workload: Box<dyn Workload>,
    sched: Box<dyn Scheduler>,
    faults: FaultPlan,
    step: u64,
    executed: u64,
    quiescent: u64,
    rng: StdRng,
    trace: Trace,
    metrics: DinerMetrics,
    last_phase: Vec<Phase>,
    /// Step at which each currently-enabled move first became (and stayed)
    /// enabled without being executed — drives fairness ages.
    first_enabled: HashMap<Move, u64>,
}

impl<A: DinerAlgorithm> Engine<A> {
    /// Start building an engine for `alg` on `topo`.
    pub fn builder(alg: A, topo: Topology) -> EngineBuilder<A> {
        EngineBuilder {
            alg,
            topo,
            workload: Box::new(AlwaysHungry),
            sched: Box::new(LeastRecentScheduler::new()),
            faults: FaultPlan::none(),
            seed: 0,
            record_trace: false,
            initial_state: None,
        }
    }

    /// The algorithm under simulation.
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The current variable state.
    pub fn state(&self) -> &SystemState<A> {
        &self.state
    }

    /// Per-process health.
    pub fn health(&self) -> &[Health] {
        &self.health
    }

    /// The current step counter (steps of simulated time so far).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Service metrics accumulated so far.
    pub fn metrics(&self) -> &DinerMetrics {
        &self.metrics
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (to enable/clear mid-run).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The diner phase of `p` in the current state.
    pub fn phase_of(&self, p: ProcessId) -> Phase {
        self.alg.phase(self.state.local(p))
    }

    /// Whether `p` has halted.
    pub fn is_dead(&self, p: ProcessId) -> bool {
        self.health[p.index()].is_dead()
    }

    /// All halted processes.
    pub fn dead_processes(&self) -> Vec<ProcessId> {
        self.topo.processes().filter(|&p| self.is_dead(p)).collect()
    }

    /// An immutable snapshot for predicate evaluation.
    pub fn snapshot(&self) -> Snapshot<'_, A> {
        Snapshot::new(&self.topo, &self.state, &self.health)
    }

    /// Evaluate a predicate on the current state.
    pub fn check<P: StatePredicate<A>>(&self, pred: &P) -> bool {
        pred.holds(&self.snapshot())
    }

    /// Pairs of neighbors simultaneously eating right now, as
    /// `(total, with_live_endpoint)` — Theorem 3 bounds the first,
    /// the `E` predicate says the second is eventually zero.
    pub fn eating_pairs(&self) -> (usize, usize) {
        let mut total = 0;
        let mut live = 0;
        for &(a, b) in self.topo.edges() {
            if self.phase_of(a) == Phase::Eating && self.phase_of(b) == Phase::Eating {
                total += 1;
                if !self.is_dead(a) || !self.is_dead(b) {
                    live += 1;
                }
            }
        }
        (total, live)
    }

    /// Enumerate the enabled moves in the current state.
    pub fn enabled_moves(&self) -> Vec<Move> {
        let mut moves = Vec::new();
        for p in self.topo.processes() {
            match self.health[p.index()] {
                Health::Dead => {}
                Health::Byzantine { .. } => moves.push(Move {
                    pid: p,
                    action: ActionId::MALICIOUS,
                }),
                Health::Live => {
                    let needs = self.workload.needs(p, self.step);
                    let view = View::new(&self.topo, &self.state, p, needs);
                    for (ki, kind) in self.alg.kinds().iter().enumerate() {
                        if kind.per_neighbor {
                            for slot in 0..self.topo.degree(p) {
                                let a = ActionId::at_slot(ki, slot);
                                if self.alg.enabled(&view, a) {
                                    moves.push(Move { pid: p, action: a });
                                }
                            }
                        } else {
                            let a = ActionId::global(ki);
                            if self.alg.enabled(&view, a) {
                                moves.push(Move { pid: p, action: a });
                            }
                        }
                    }
                }
            }
        }
        moves
    }

    /// Execute one step of the computation; see the module docs.
    pub fn step(&mut self) -> StepOutcome {
        self.apply_due_faults();
        let enabled = self.enabled_moves();

        // Refresh fairness ages: drop moves no longer enabled, admit new.
        let step = self.step;
        self.first_enabled.retain(|m, _| enabled.contains(m));
        let annotated: Vec<EnabledMove> = enabled
            .iter()
            .map(|&mv| {
                let first = *self.first_enabled.entry(mv).or_insert(step);
                EnabledMove {
                    mv,
                    age: step - first + 1,
                }
            })
            .collect();

        if annotated.is_empty() {
            self.step += 1;
            self.quiescent += 1;
            return StepOutcome::Quiescent;
        }

        let choice = self.sched.pick(step, &annotated);
        assert!(
            choice < annotated.len(),
            "scheduler {} returned out-of-range index {choice}",
            self.sched.name()
        );
        let mv = annotated[choice].mv;
        self.execute_move(mv);
        self.first_enabled.remove(&mv);

        // Exclusion monitor.
        let (_, live_pairs) = self.eating_pairs();
        self.metrics.on_exclusion_check(step, live_pairs);

        self.step += 1;
        self.executed += 1;
        StepOutcome::Executed(mv)
    }

    /// Run `steps` steps of simulated time.
    pub fn run(&mut self, steps: u64) -> RunSummary {
        let start_exec = self.executed;
        let start_quiet = self.quiescent;
        for _ in 0..steps {
            self.step();
        }
        RunSummary {
            steps,
            executed: self.executed - start_exec,
            quiescent: self.quiescent - start_quiet,
        }
    }

    /// Run until `pred` holds (checked before each step), at most
    /// `max_steps` further steps. Returns the step count at which the
    /// predicate first held.
    pub fn run_until<P: StatePredicate<A>>(&mut self, pred: &P, max_steps: u64) -> Option<u64> {
        let deadline = self.step + max_steps;
        loop {
            if pred.holds(&self.snapshot()) {
                return Some(self.step);
            }
            if self.step >= deadline {
                return None;
            }
            self.step();
        }
    }

    /// Run up to `max_steps` steps and report the first step from which
    /// `pred` held *continuously* through the horizon (the empirical
    /// convergence point for closed predicates). `None` if the predicate
    /// does not hold at the end of the horizon.
    pub fn convergence_step<P: StatePredicate<A>>(
        &mut self,
        pred: &P,
        max_steps: u64,
    ) -> Option<u64> {
        let mut since: Option<u64> = if pred.holds(&self.snapshot()) {
            Some(self.step)
        } else {
            None
        };
        for _ in 0..max_steps {
            self.step();
            if pred.holds(&self.snapshot()) {
                since.get_or_insert(self.step);
            } else {
                since = None;
            }
        }
        since
    }

    fn apply_due_faults(&mut self) {
        let step = self.step;
        let due: Vec<_> = self.faults.due_at(step).copied().collect();
        for ev in due {
            match ev.kind {
                FaultKind::Crash => {
                    self.health[ev.target.index()] = Health::Dead;
                }
                FaultKind::MaliciousCrash { steps } => {
                    if self.health[ev.target.index()].is_active() {
                        self.health[ev.target.index()] = if steps == 0 {
                            Health::Dead
                        } else {
                            Health::Byzantine { remaining: steps }
                        };
                    }
                }
                FaultKind::TransientGlobal => {
                    self.state.corrupt_all(&self.alg, &self.topo, &mut self.rng);
                    self.resync_phases();
                }
                FaultKind::TransientLocal => {
                    self.state
                        .corrupt_process(&self.alg, &self.topo, &mut self.rng, ev.target);
                    self.last_phase[ev.target.index()] =
                        self.alg.phase(self.state.local(ev.target));
                }
            }
            self.trace.record(Event {
                step,
                pid: ev.target,
                kind: EventKind::Fault(ev.kind),
            });
        }
    }

    fn resync_phases(&mut self) {
        for p in self.topo.processes() {
            self.last_phase[p.index()] = self.alg.phase(self.state.local(p));
        }
    }

    fn execute_move(&mut self, mv: Move) {
        let pid = mv.pid;
        let before = self.alg.phase(self.state.local(pid));
        let writes: Vec<Write<A>> = if mv.action.is_malicious() {
            let view = View::new(&self.topo, &self.state, pid, false);
            let w = self.alg.malicious_writes(&view, &mut self.rng);
            match &mut self.health[pid.index()] {
                Health::Byzantine { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.health[pid.index()] = Health::Dead;
                    }
                }
                other => unreachable!("malicious move for non-byzantine process: {other:?}"),
            }
            self.trace.record(Event {
                step: self.step,
                pid,
                kind: EventKind::MaliciousStep,
            });
            w
        } else {
            let needs = self.workload.needs(pid, self.step);
            let view = View::new(&self.topo, &self.state, pid, needs);
            debug_assert!(
                self.alg.enabled(&view, mv.action),
                "scheduler fired a disabled move {mv:?}"
            );
            let w = self.alg.execute(&view, mv.action);
            let kind = self.alg.kinds()[mv.action.kind];
            self.trace.record(Event {
                step: self.step,
                pid,
                kind: EventKind::Action {
                    kind: mv.action.kind,
                    slot: mv.action.slot,
                    name: kind.name,
                },
            });
            w
        };

        for w in writes {
            match w {
                Write::Local(l) => *self.state.local_mut(pid) = l,
                Write::Edge { neighbor, value } => {
                    let e = self
                        .topo
                        .edge_between(pid, neighbor)
                        .unwrap_or_else(|| panic!("{} wrote edge to non-neighbor {neighbor}", pid));
                    *self.state.edge_mut(e) = value;
                }
            }
        }

        let after = self.alg.phase(self.state.local(pid));
        self.last_phase[pid.index()] = after;
        if before != after {
            self.metrics.on_phase_change(pid, before, after, self.step);
            if after == Phase::Eating {
                self.workload.note_eat(pid, self.step);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::predicate::FnPredicate;
    use crate::scheduler::RandomScheduler;
    use crate::toy::{ToyDiners, TOY_ENTER, TOY_EXIT, TOY_JOIN};
    use crate::workload::{NeverHungry, QuotaWorkload};

    fn toy_engine(n: usize) -> Engine<ToyDiners> {
        Engine::builder(ToyDiners, Topology::line(n))
            .scheduler(RandomScheduler::new(1))
            .seed(1)
            .build()
    }

    #[test]
    fn never_hungry_system_is_quiescent() {
        let mut e = Engine::builder(ToyDiners, Topology::ring(4))
            .workload(NeverHungry)
            .build();
        let s = e.run(10);
        assert_eq!(s.executed, 0);
        assert_eq!(s.quiescent, 10);
        assert_eq!(e.step_count(), 10);
    }

    #[test]
    fn everyone_eats_under_fair_scheduling() {
        let mut e = toy_engine(5);
        e.run(2_000);
        for p in e.topology().processes() {
            assert!(e.metrics().eats_of(p) > 0, "{p} never ate");
        }
        assert_eq!(e.metrics().violation_step_count(), 0);
    }

    #[test]
    fn quota_workload_quiesces_after_meals() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .workload(QuotaWorkload::uniform(3, 2))
            .build();
        e.run(500);
        for p in e.topology().processes() {
            assert_eq!(e.metrics().eats_of(p), 2, "{p} should eat exactly twice");
        }
        // After quotas are filled, nothing is enabled.
        assert!(e.enabled_moves().is_empty());
    }

    #[test]
    fn crash_fault_halts_a_process() {
        let mut e = Engine::builder(ToyDiners, Topology::line(4))
            .faults(FaultPlan::new().crash(10, 0))
            .record_trace(true)
            .build();
        e.run(100);
        assert!(e.is_dead(ProcessId(0)));
        assert_eq!(e.dead_processes(), vec![ProcessId(0)]);
        // Dead process takes no further actions.
        let actions_after: Vec<_> = e
            .trace()
            .actions_of(ProcessId(0))
            .into_iter()
            .filter(|(s, _)| *s >= 10)
            .collect();
        assert!(
            actions_after.is_empty(),
            "dead process acted: {actions_after:?}"
        );
    }

    #[test]
    fn malicious_crash_takes_exactly_k_steps_then_halts() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .faults(FaultPlan::new().malicious_crash(0, 1, 3))
            .record_trace(true)
            .build();
        e.run(200);
        assert!(e.is_dead(ProcessId(1)));
        let malicious = e
            .trace()
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::MaliciousStep))
            .count();
        assert_eq!(malicious, 3);
    }

    #[test]
    fn malicious_crash_with_zero_steps_is_benign() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .faults(FaultPlan::new().malicious_crash(5, 2, 0))
            .build();
        e.run(50);
        assert!(e.is_dead(ProcessId(2)));
    }

    #[test]
    fn initially_dead_never_acts() {
        let mut e = Engine::builder(ToyDiners, Topology::line(3))
            .faults(FaultPlan::new().initially_dead(1))
            .record_trace(true)
            .build();
        e.run(200);
        assert!(e.trace().actions_of(ProcessId(1)).is_empty());
        // Its neighbors can still eat (it died thinking).
        assert!(e.metrics().eats_of(ProcessId(0)) > 0);
    }

    #[test]
    fn arbitrary_start_is_deterministic_in_seed() {
        let build = |seed| {
            Engine::builder(ToyDiners, Topology::ring(6))
                .faults(FaultPlan::new().from_arbitrary_state())
                .seed(seed)
                .build()
        };
        assert_eq!(build(7).state(), build(7).state());
        // Over several seeds, at least one differs from the legitimate
        // initial state (all thinking).
        let legit = SystemState::initial(&ToyDiners, &Topology::ring(6));
        assert!((0..10).any(|s| build(s).state() != &legit));
    }

    #[test]
    fn transient_global_corrupts_state() {
        let mut e = Engine::builder(ToyDiners, Topology::ring(8))
            .workload(NeverHungry)
            .faults(FaultPlan::new().transient_global(5))
            .seed(3)
            .build();
        e.run(5);
        let before = e.state().clone();
        e.run(1);
        assert_ne!(&before, e.state(), "transient fault should perturb state");
    }

    #[test]
    fn run_until_and_convergence() {
        let mut e = toy_engine(4);
        let p0_ate = FnPredicate::new::<ToyDiners>("p0-eating", |s: &Snapshot<'_, ToyDiners>| {
            *s.state.local(ProcessId(0)) == Phase::Eating
        });
        let at = e.run_until(&p0_ate, 10_000);
        assert!(at.is_some(), "p0 eventually eats");

        // Toy diners converge to "no live neighbors both eating" trivially.
        let mut e2 = toy_engine(4);
        let excl = FnPredicate::new::<ToyDiners>("exclusion", |s: &Snapshot<'_, ToyDiners>| {
            s.topo.edges().iter().all(|&(a, b)| {
                !(*s.state.local(a) == Phase::Eating && *s.state.local(b) == Phase::Eating)
            })
        });
        assert!(e2.convergence_step(&excl, 500).is_some());
    }

    #[test]
    fn eating_pairs_counts() {
        let t = Topology::line(3);
        let mut st: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &t);
        *st.local_mut(ProcessId(0)) = Phase::Eating;
        *st.local_mut(ProcessId(1)) = Phase::Eating;
        let e = Engine::builder(ToyDiners, t).initial_state(st).build();
        assert_eq!(e.eating_pairs(), (1, 1));
    }

    #[test]
    fn enabled_moves_reflect_guards() {
        let e = toy_engine(3);
        let moves = e.enabled_moves();
        // Initially everyone is thinking and hungry-able: only joins.
        assert_eq!(moves.len(), 3);
        assert!(moves.iter().all(|m| m.action.kind == TOY_JOIN));
    }

    #[test]
    fn step_outcome_reports_move() {
        let mut e = toy_engine(2);
        match e.step() {
            StepOutcome::Executed(m) => assert_eq!(m.action.kind, TOY_JOIN),
            StepOutcome::Quiescent => panic!("join should be enabled"),
        }
    }

    #[test]
    fn phases_and_metrics_agree() {
        let mut e = toy_engine(2);
        e.run(100);
        let total: u64 = e
            .topology()
            .processes()
            .map(|p| e.metrics().eats_of(p))
            .sum();
        assert!(total > 0);
        // Whoever is eating now is counted in current phase queries.
        for p in e.topology().processes() {
            let _ = e.phase_of(p);
        }
        let _ = (TOY_ENTER, TOY_EXIT);
    }
}
