//! A minimal reference diner used by the substrate's own tests and
//! benches.
//!
//! `ToyDiners` is *not* the paper's algorithm (that lives in the
//! `diners-core` crate): it is the simplest possible id-priority diner —
//! a hungry process eats when no neighbor is eating and no hungry
//! neighbor has a smaller id. It is safe under the serial daemon from
//! legitimate states, but it is neither stabilizing in general nor
//! failure-local (a crashed eating process starves its whole neighborhood
//! and, transitively through id order, arbitrarily distant processes),
//! which also makes it a useful contrast in examples.

use rand::rngs::StdRng;
use rand::Rng;

use crate::algorithm::{ActionId, ActionKind, Algorithm, DinerAlgorithm, Phase, View, Write};
use crate::codec::{phase_from_bits, phase_to_bits, StateCodec};
use crate::graph::{EdgeId, ProcessId, Topology};

/// The simplest id-priority diner; see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ToyDiners;

/// Action kind index of `join`.
pub const TOY_JOIN: usize = 0;
/// Action kind index of `enter`.
pub const TOY_ENTER: usize = 1;
/// Action kind index of `exit`.
pub const TOY_EXIT: usize = 2;

const KINDS: &[ActionKind] = &[
    ActionKind {
        name: "join",
        per_neighbor: false,
    },
    ActionKind {
        name: "enter",
        per_neighbor: false,
    },
    ActionKind {
        name: "exit",
        per_neighbor: false,
    },
];

impl Algorithm for ToyDiners {
    type Local = Phase;
    type Edge = ();

    fn name(&self) -> &str {
        "toy-id-priority"
    }

    fn kinds(&self) -> &[ActionKind] {
        KINDS
    }

    fn init_local(&self, _topo: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }

    fn init_edge(&self, _topo: &Topology, _e: EdgeId) {}

    fn enabled(&self, view: &View<'_, Self>, action: ActionId) -> bool {
        let me = *view.local();
        match action.kind {
            TOY_JOIN => me == Phase::Thinking && view.needs(),
            TOY_ENTER => {
                me == Phase::Hungry
                    && view.neighbors().iter().all(|&q| {
                        let ph = *view.neighbor_local(q);
                        ph != Phase::Eating && !(ph == Phase::Hungry && q < view.pid())
                    })
            }
            TOY_EXIT => me == Phase::Eating,
            _ => false,
        }
    }

    fn execute(&self, _view: &View<'_, Self>, action: ActionId) -> Vec<Write<Self>> {
        let next = match action.kind {
            TOY_JOIN => Phase::Hungry,
            TOY_ENTER => Phase::Eating,
            TOY_EXIT => Phase::Thinking,
            _ => unreachable!("unknown toy action {action:?}"),
        };
        vec![Write::Local(next)]
    }

    fn corrupt_local(&self, rng: &mut StdRng, _topo: &Topology, _p: ProcessId) -> Phase {
        match rng.gen_range(0..3) {
            0 => Phase::Thinking,
            1 => Phase::Hungry,
            _ => Phase::Eating,
        }
    }

    fn corrupt_edge(&self, _rng: &mut StdRng, _topo: &Topology, _e: EdgeId) {}
}

impl DinerAlgorithm for ToyDiners {
    fn phase(&self, local: &Phase) -> Phase {
        *local
    }
}

/// 2 bits per process (the phase), nothing per edge. The whole toy-ring(12)
/// state packs into 24 bits of one `u64`.
///
/// `respects_symmetry` stays at its `false` default: the `enter` guard
/// breaks ties by absolute process id (`q < p`), so rotating a ring state
/// changes which process may move — the toy diner is *not* equivariant.
impl StateCodec for ToyDiners {
    fn local_bits(&self, _topo: &Topology) -> u32 {
        2
    }

    fn edge_bits(&self, _topo: &Topology) -> u32 {
        0
    }

    fn encode_local(&self, _topo: &Topology, _p: ProcessId, local: &Phase) -> u64 {
        phase_to_bits(*local)
    }

    fn decode_local(&self, _topo: &Topology, _p: ProcessId, bits: u64) -> Phase {
        phase_from_bits(bits)
    }

    fn encode_edge(&self, _topo: &Topology, _e: EdgeId, _value: &()) -> u64 {
        0
    }

    fn decode_edge(&self, _topo: &Topology, _e: EdgeId, _bits: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SystemState;

    #[test]
    fn guards_follow_id_priority() {
        let t = Topology::line(3);
        let mut s: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &t);
        *s.local_mut(ProcessId(0)) = Phase::Hungry;
        *s.local_mut(ProcessId(1)) = Phase::Hungry;
        let v0 = View::new(&t, &s, ProcessId(0), true);
        let v1 = View::new(&t, &s, ProcessId(1), true);
        assert!(ToyDiners.enabled(&v0, ActionId::global(TOY_ENTER)));
        assert!(
            !ToyDiners.enabled(&v1, ActionId::global(TOY_ENTER)),
            "hungry lower-id neighbor blocks"
        );
    }

    #[test]
    fn eating_neighbor_blocks_enter() {
        let t = Topology::line(2);
        let mut s: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &t);
        *s.local_mut(ProcessId(0)) = Phase::Hungry;
        *s.local_mut(ProcessId(1)) = Phase::Eating;
        let v0 = View::new(&t, &s, ProcessId(0), true);
        assert!(!ToyDiners.enabled(&v0, ActionId::global(TOY_ENTER)));
        let v1 = View::new(&t, &s, ProcessId(1), false);
        assert!(ToyDiners.enabled(&v1, ActionId::global(TOY_EXIT)));
    }

    #[test]
    fn join_requires_needs() {
        let t = Topology::line(2);
        let s: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &t);
        let hungry = View::new(&t, &s, ProcessId(0), true);
        let sated = View::new(&t, &s, ProcessId(0), false);
        assert!(ToyDiners.enabled(&hungry, ActionId::global(TOY_JOIN)));
        assert!(!ToyDiners.enabled(&sated, ActionId::global(TOY_JOIN)));
    }
}
