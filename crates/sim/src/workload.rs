//! Workloads: implementations of the paper's `needs():p` function.
//!
//! The paper leaves `needs()` completely free ("the function evaluates to
//! true arbitrarily"); liveness is stated for processes whose `needs()`
//! continuously evaluates to true. A [`Workload`] decides, per process and
//! step, whether the process currently wants to eat, and is informed of
//! completed meals so quota-style workloads can stop asking.

use crate::graph::ProcessId;
use crate::rng;

/// The paper's `needs():p` function, evaluated by the engine when
/// computing `join` guards.
pub trait Workload {
    /// Whether process `pid` wants to eat at `step`.
    fn needs(&self, pid: ProcessId, step: u64) -> bool;

    /// Notification that `pid` started eating at `step` (a meal). The
    /// default implementation ignores it.
    fn note_eat(&mut self, pid: ProcessId, step: u64) {
        let _ = (pid, step);
    }

    /// Whether `needs` can change with `step` alone.
    ///
    /// Return `false` only if, for every process `p`, `needs(p, step)` is
    /// independent of `step` and changes exclusively through
    /// `note_eat(p, _)` (never another process's meal). The incremental
    /// engine then skips its per-step needs rescan and relies on dirty-set
    /// invalidation: a meal at `p` marks `p` dirty, which re-evaluates
    /// `needs(p, _)`. The default is `true` (always sound, just slower).
    fn step_dependent(&self) -> bool {
        true
    }

    /// Workload name for reports.
    fn name(&self) -> &str;
}

/// Every process wants to eat at every step — the maximum-contention
/// workload used for throughput and liveness experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysHungry;

impl Workload for AlwaysHungry {
    fn needs(&self, _pid: ProcessId, _step: u64) -> bool {
        true
    }
    fn step_dependent(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "always-hungry"
    }
}

/// No process ever wants to eat (quiescence testing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeverHungry;

impl Workload for NeverHungry {
    fn needs(&self, _pid: ProcessId, _step: u64) -> bool {
        false
    }
    fn step_dependent(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "never-hungry"
    }
}

/// Each `(pid, step)` wants to eat independently with probability
/// `num/den`, as a *pure function* of the inputs (so repeated guard
/// evaluations within a step agree, and runs are reproducible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BernoulliWorkload {
    seed: u64,
    num: u32,
    den: u32,
}

impl BernoulliWorkload {
    /// Wants to eat with probability `num/den` per (process, step).
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn new(seed: u64, num: u32, den: u32) -> Self {
        assert!(den != 0 && num <= den, "invalid probability {num}/{den}");
        BernoulliWorkload { seed, num, den }
    }
}

impl Workload for BernoulliWorkload {
    fn needs(&self, pid: ProcessId, step: u64) -> bool {
        rng::bernoulli_hash(self.seed, pid.index() as u64, step, self.num, self.den)
    }
    fn name(&self) -> &str {
        "bernoulli"
    }
}

/// Each process wants to eat until it has completed a fixed number of
/// meals, then thinks forever. Useful for termination-style experiments
/// ("every job runs `k` critical sections").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuotaWorkload {
    remaining: Vec<u64>,
}

impl QuotaWorkload {
    /// Every process wants `quota` meals.
    pub fn uniform(n: usize, quota: u64) -> Self {
        QuotaWorkload {
            remaining: vec![quota; n],
        }
    }

    /// Per-process quotas.
    pub fn per_process(quotas: Vec<u64>) -> Self {
        QuotaWorkload { remaining: quotas }
    }

    /// Meals still owed to `pid`.
    pub fn remaining(&self, pid: ProcessId) -> u64 {
        self.remaining[pid.index()]
    }

    /// Whether every process has eaten its quota.
    pub fn all_satisfied(&self) -> bool {
        self.remaining.iter().all(|&r| r == 0)
    }
}

impl Workload for QuotaWorkload {
    fn needs(&self, pid: ProcessId, _step: u64) -> bool {
        self.remaining[pid.index()] > 0
    }
    fn note_eat(&mut self, pid: ProcessId, _step: u64) {
        let r = &mut self.remaining[pid.index()];
        *r = r.saturating_sub(1);
    }
    fn step_dependent(&self) -> bool {
        // needs(p, _) changes only via note_eat(p, _).
        false
    }
    fn name(&self) -> &str {
        "quota"
    }
}

/// Only an explicit subset of processes is ever hungry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubsetWorkload {
    hungry: Vec<bool>,
}

impl SubsetWorkload {
    /// The given processes want to eat at every step; all others never do.
    pub fn new(n: usize, hungry: impl IntoIterator<Item = ProcessId>) -> Self {
        let mut mask = vec![false; n];
        for p in hungry {
            mask[p.index()] = true;
        }
        SubsetWorkload { hungry: mask }
    }
}

impl Workload for SubsetWorkload {
    fn needs(&self, pid: ProcessId, _step: u64) -> bool {
        self.hungry[pid.index()]
    }
    fn step_dependent(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "subset"
    }
}

/// A workload defined by an arbitrary pure function of `(pid, step)`.
pub struct FnWorkload<F> {
    f: F,
    label: &'static str,
}

impl<F: Fn(ProcessId, u64) -> bool> FnWorkload<F> {
    /// Wrap a pure function as a workload.
    pub fn new(label: &'static str, f: F) -> Self {
        FnWorkload { f, label }
    }
}

impl<F: Fn(ProcessId, u64) -> bool> Workload for FnWorkload<F> {
    fn needs(&self, pid: ProcessId, step: u64) -> bool {
        (self.f)(pid, step)
    }
    fn name(&self) -> &str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_and_never() {
        assert!(AlwaysHungry.needs(ProcessId(0), 0));
        assert!(AlwaysHungry.needs(ProcessId(3), 999));
        assert!(!NeverHungry.needs(ProcessId(0), 0));
    }

    #[test]
    fn bernoulli_is_pure_and_calibrated() {
        let w = BernoulliWorkload::new(11, 1, 2);
        assert_eq!(w.needs(ProcessId(2), 5), w.needs(ProcessId(2), 5));
        let hits = (0..10_000).filter(|&s| w.needs(ProcessId(0), s)).count() as f64;
        assert!((hits / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn bernoulli_rejects_bad_probability() {
        BernoulliWorkload::new(0, 3, 2);
    }

    #[test]
    fn quota_counts_down_and_saturates() {
        let mut w = QuotaWorkload::uniform(2, 2);
        let p = ProcessId(0);
        assert!(w.needs(p, 0));
        w.note_eat(p, 1);
        assert_eq!(w.remaining(p), 1);
        w.note_eat(p, 2);
        assert!(!w.needs(p, 3));
        w.note_eat(p, 4); // extra meals don't underflow
        assert_eq!(w.remaining(p), 0);
        assert!(!w.all_satisfied());
        w.note_eat(ProcessId(1), 5);
        w.note_eat(ProcessId(1), 6);
        assert!(w.all_satisfied());
    }

    #[test]
    fn subset_masks_processes() {
        let w = SubsetWorkload::new(4, [ProcessId(1), ProcessId(3)]);
        assert!(!w.needs(ProcessId(0), 0));
        assert!(w.needs(ProcessId(1), 0));
        assert!(!w.needs(ProcessId(2), 7));
        assert!(w.needs(ProcessId(3), 7));
    }

    #[test]
    fn fn_workload_delegates() {
        let w = FnWorkload::new("even-steps", |_p, s| s % 2 == 0);
        assert!(w.needs(ProcessId(0), 4));
        assert!(!w.needs(ProcessId(0), 5));
        assert_eq!(w.name(), "even-steps");
    }

    #[test]
    fn step_dependence_flags() {
        // Static / meal-driven workloads opt out of the per-step rescan;
        // anything that can vary with the step keeps the safe default.
        assert!(!AlwaysHungry.step_dependent());
        assert!(!NeverHungry.step_dependent());
        assert!(!QuotaWorkload::uniform(2, 1).step_dependent());
        assert!(!SubsetWorkload::new(2, [ProcessId(0)]).step_dependent());
        assert!(BernoulliWorkload::new(0, 1, 2).step_dependent());
        assert!(FnWorkload::new("f", |_p, _s| true).step_dependent());
    }
}
