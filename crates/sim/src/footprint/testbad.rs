//! Deliberately ill-behaved algorithms that each violate exactly one
//! contract, used as negative tests for the [`footprint`](super)
//! certifiers and the engine's runtime write checks. Every certifier must
//! *refute* its fixture with a usable witness; a certifier that passes
//! one of these is broken.

use std::cell::Cell;

use rand::rngs::StdRng;
use rand::Rng;

use crate::algorithm::{ActionId, ActionKind, Algorithm, DinerAlgorithm, Phase, View, Write};
use crate::codec::{phase_from_bits, phase_to_bits, StateCodec};
use crate::graph::{EdgeId, ProcessId, Topology};

fn random_phase(rng: &mut StdRng) -> Phase {
    match rng.gen_range(0..3u8) {
        0 => Phase::Thinking,
        1 => Phase::Hungry,
        _ => Phase::Eating,
    }
}

/// Implements the phase-only boilerplate shared by every fixture:
/// `DinerAlgorithm` (the local *is* the phase) and a 2-bit/0-bit
/// `StateCodec` with the given `respects_symmetry` declaration.
macro_rules! phase_fixture {
    ($ty:ty, $sym:expr) => {
        impl DinerAlgorithm for $ty {
            fn phase(&self, local: &Phase) -> Phase {
                *local
            }
        }

        impl StateCodec for $ty {
            fn local_bits(&self, _topo: &Topology) -> u32 {
                2
            }
            fn edge_bits(&self, _topo: &Topology) -> u32 {
                0
            }
            fn encode_local(&self, _t: &Topology, _p: ProcessId, local: &Phase) -> u64 {
                phase_to_bits(*local)
            }
            fn decode_local(&self, _t: &Topology, _p: ProcessId, bits: u64) -> Phase {
                phase_from_bits(bits)
            }
            fn encode_edge(&self, _t: &Topology, _e: EdgeId, _value: &()) -> u64 {
                0
            }
            fn decode_edge(&self, _t: &Topology, _e: EdgeId, _bits: u64) {}
            fn respects_symmetry(&self) -> bool {
                $sym
            }
        }
    };
}

/// Violates **locality** (reads): its guard peeks two hops out — it
/// scans the neighbors *of its neighbors* for eaters, reading locals
/// outside the closed neighborhood. The locality certifier must refute
/// it naming the distance-2 read; only traced (permissive) views make
/// the violation observable instead of an adjacency panic.
pub struct PeekingGuard;

const PEEKING_KINDS: &[ActionKind] = &[ActionKind {
    name: "peek-enter",
    per_neighbor: false,
}];

impl Algorithm for PeekingGuard {
    type Local = Phase;
    type Edge = ();

    fn name(&self) -> &str {
        "peeking-guard"
    }
    fn kinds(&self) -> &[ActionKind] {
        PEEKING_KINDS
    }
    fn init_local(&self, _t: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }
    fn init_edge(&self, _t: &Topology, _e: EdgeId) {}
    fn enabled(&self, view: &View<'_, Self>, a: ActionId) -> bool {
        a.kind == 0
            && *view.local() == Phase::Hungry
            && view.neighbors().iter().all(|&q| {
                *view.neighbor_local(q) != Phase::Eating
                    && view
                        .topology()
                        .neighbors(q)
                        .iter()
                        .all(|&r| r == view.pid() || *view.neighbor_local(r) != Phase::Eating)
            })
    }
    fn execute(&self, _view: &View<'_, Self>, _a: ActionId) -> Vec<Write<Self>> {
        vec![Write::Local(Phase::Eating)]
    }
    fn corrupt_local(&self, rng: &mut StdRng, _t: &Topology, _p: ProcessId) -> Phase {
        random_phase(rng)
    }
    fn corrupt_edge(&self, _r: &mut StdRng, _t: &Topology, _e: EdgeId) {}
}

phase_fixture!(PeekingGuard, false);

/// Violates **locality** (writes): its command writes the shared
/// variable of an edge it is not incident to (the first process at
/// distance ≥ 2). The locality certifier must refute it, and the
/// engine's runtime write check must reject the write (debug panic /
/// release reject + `engine.write_violations`).
pub struct FarWriter;

const FAR_KINDS: &[ActionKind] = &[ActionKind {
    name: "far-grab",
    per_neighbor: false,
}];

impl Algorithm for FarWriter {
    type Local = Phase;
    type Edge = ();

    fn name(&self) -> &str {
        "far-writer"
    }
    fn kinds(&self) -> &[ActionKind] {
        FAR_KINDS
    }
    fn init_local(&self, _t: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }
    fn init_edge(&self, _t: &Topology, _e: EdgeId) {}
    fn enabled(&self, view: &View<'_, Self>, a: ActionId) -> bool {
        a.kind == 0 && *view.local() == Phase::Thinking
    }
    fn execute(&self, view: &View<'_, Self>, _a: ActionId) -> Vec<Write<Self>> {
        let topo = view.topology();
        let pid = view.pid();
        let mut writes = vec![Write::Local(Phase::Hungry)];
        if let Some(far) = topo
            .processes()
            .find(|&q| q != pid && !topo.are_neighbors(pid, q))
        {
            writes.push(Write::Edge {
                neighbor: far,
                value: (),
            });
        }
        writes
    }
    fn corrupt_local(&self, rng: &mut StdRng, _t: &Topology, _p: ProcessId) -> Phase {
        random_phase(rng)
    }
    fn corrupt_edge(&self, _r: &mut StdRng, _t: &Topology, _e: EdgeId) {}
}

phase_fixture!(FarWriter, false);

/// Violates **purity**: its guard keeps hidden state in a [`Cell`] and
/// alternates between `true` and `false` on successive evaluations of
/// the *same* view. The double-evaluation differential must refute it.
#[derive(Default)]
pub struct FlickerGuard {
    flip: Cell<bool>,
}

const FLICKER_KINDS: &[ActionKind] = &[ActionKind {
    name: "flicker",
    per_neighbor: false,
}];

impl Algorithm for FlickerGuard {
    type Local = Phase;
    type Edge = ();

    fn name(&self) -> &str {
        "flicker-guard"
    }
    fn kinds(&self) -> &[ActionKind] {
        FLICKER_KINDS
    }
    fn init_local(&self, _t: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }
    fn init_edge(&self, _t: &Topology, _e: EdgeId) {}
    fn enabled(&self, view: &View<'_, Self>, a: ActionId) -> bool {
        a.kind == 0 && *view.local() == Phase::Thinking && self.flip.replace(!self.flip.get())
    }
    fn execute(&self, _view: &View<'_, Self>, _a: ActionId) -> Vec<Write<Self>> {
        vec![Write::Local(Phase::Hungry)]
    }
    fn corrupt_local(&self, rng: &mut StdRng, _t: &Topology, _p: ProcessId) -> Phase {
        random_phase(rng)
    }
    fn corrupt_edge(&self, _r: &mut StdRng, _t: &Topology, _e: EdgeId) {}
}

phase_fixture!(FlickerGuard, false);

/// Violates the **malicious capability**: its `malicious_writes` writes
/// a shared edge variable while keeping the default (empty) capability
/// declaration. The locality certifier must refute it, and the engine
/// must reject the write when a malicious crash is injected.
pub struct RogueMalicious;

const ROGUE_KINDS: &[ActionKind] = &[ActionKind {
    name: "never",
    per_neighbor: false,
}];

impl Algorithm for RogueMalicious {
    type Local = Phase;
    type Edge = ();

    fn name(&self) -> &str {
        "rogue-malicious"
    }
    fn kinds(&self) -> &[ActionKind] {
        ROGUE_KINDS
    }
    fn init_local(&self, _t: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }
    fn init_edge(&self, _t: &Topology, _e: EdgeId) {}
    fn enabled(&self, _view: &View<'_, Self>, _a: ActionId) -> bool {
        false
    }
    fn execute(&self, _view: &View<'_, Self>, _a: ActionId) -> Vec<Write<Self>> {
        Vec::new()
    }
    fn corrupt_local(&self, rng: &mut StdRng, _t: &Topology, _p: ProcessId) -> Phase {
        random_phase(rng)
    }
    fn corrupt_edge(&self, _r: &mut StdRng, _t: &Topology, _e: EdgeId) {}
    fn malicious_writes(&self, view: &View<'_, Self>, rng: &mut StdRng) -> Vec<Write<Self>> {
        let mut writes = vec![Write::Local(self.corrupt_local(
            rng,
            view.topology(),
            view.pid(),
        ))];
        if let Some(&q) = view.neighbors().first() {
            writes.push(Write::Edge {
                neighbor: q,
                value: (),
            });
        }
        writes
    }
}

phase_fixture!(RogueMalicious, false);

/// Violates the **equivariance declaration**: the toy algorithm's
/// pid-tie-break guard (`hungry neighbor with smaller id wins`), but
/// with `respects_symmetry()` falsely declared `true`. The equivariance
/// certifier must flag the declared-vs-inferred mismatch with a
/// commutation witness.
pub struct FalselySymmetric;

/// `join` kind index.
pub const FS_JOIN: usize = 0;
/// `enter` kind index.
pub const FS_ENTER: usize = 1;
/// `exit` kind index.
pub const FS_EXIT: usize = 2;

const FS_KINDS: &[ActionKind] = &[
    ActionKind {
        name: "join",
        per_neighbor: false,
    },
    ActionKind {
        name: "enter",
        per_neighbor: false,
    },
    ActionKind {
        name: "exit",
        per_neighbor: false,
    },
];

impl Algorithm for FalselySymmetric {
    type Local = Phase;
    type Edge = ();

    fn name(&self) -> &str {
        "falsely-symmetric"
    }
    fn kinds(&self) -> &[ActionKind] {
        FS_KINDS
    }
    fn init_local(&self, _t: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }
    fn init_edge(&self, _t: &Topology, _e: EdgeId) {}
    fn enabled(&self, view: &View<'_, Self>, a: ActionId) -> bool {
        let me = *view.local();
        match a.kind {
            FS_JOIN => me == Phase::Thinking && view.needs(),
            FS_ENTER => {
                me == Phase::Hungry
                    && view.neighbors().iter().all(|&q| {
                        let ph = *view.neighbor_local(q);
                        ph != Phase::Eating && !(ph == Phase::Hungry && q < view.pid())
                    })
            }
            FS_EXIT => me == Phase::Eating && !view.needs(),
            _ => false,
        }
    }
    fn execute(&self, _view: &View<'_, Self>, a: ActionId) -> Vec<Write<Self>> {
        let next = match a.kind {
            FS_JOIN => Phase::Hungry,
            FS_ENTER => Phase::Eating,
            _ => Phase::Thinking,
        };
        vec![Write::Local(next)]
    }
    fn corrupt_local(&self, rng: &mut StdRng, _t: &Topology, _p: ProcessId) -> Phase {
        random_phase(rng)
    }
    fn corrupt_edge(&self, _r: &mut StdRng, _t: &Topology, _e: EdgeId) {}
}

phase_fixture!(FalselySymmetric, true);
