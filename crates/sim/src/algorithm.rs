//! The guarded-command algorithm abstraction.
//!
//! The paper's computation model (§2): a program is a set of processes
//! joined by a symmetric neighbor relation. Each process owns *local*
//! variables and shares one variable per incident edge with the neighbor at
//! the other end. An *action* is a guard (a predicate over local and
//! neighbor variables) and a command (assignments to local variables and,
//! in a restricted manner, to shared edge variables). A computation is a
//! maximal weakly-fair interleaving of enabled actions.
//!
//! [`Algorithm`] captures exactly that model: implementations declare their
//! action kinds, evaluate guards over a read-only [`View`] of the process's
//! neighborhood and produce [`Write`]s that the engine applies atomically
//! (composite atomicity, central daemon).

use std::fmt;

use rand::rngs::StdRng;

use crate::graph::{EdgeId, ProcessId, Topology};

/// The classic dining-philosophers phases: `T`, `H`, `E` in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// `T` — the process does not currently require its resources.
    #[default]
    Thinking,
    /// `H` — the process wants to eat and is waiting.
    Hungry,
    /// `E` — the process is in its critical section.
    Eating,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Phase::Thinking => 'T',
            Phase::Hungry => 'H',
            Phase::Eating => 'E',
        };
        write!(f, "{c}")
    }
}

/// Static description of one action kind of an algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActionKind {
    /// Human-readable action name (e.g. `"join"`).
    pub name: &'static str,
    /// Whether the action is parameterized by a neighbor (one instance per
    /// neighbor slot, like the paper's `fixdepth`) or global (one instance).
    pub per_neighbor: bool,
}

/// Identifier of an action *instance* at one process: an action kind plus,
/// for per-neighbor kinds, the neighbor slot it is instantiated with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId {
    /// Index into [`Algorithm::kinds`], or [`ActionId::MALICIOUS_KIND`].
    pub kind: usize,
    /// Neighbor slot for per-neighbor kinds; `None` for global kinds.
    pub slot: Option<usize>,
}

impl ActionId {
    /// Reserved kind index for the pseudo-action taken by a process in its
    /// malicious pre-crash phase. Never passed to [`Algorithm::enabled`].
    pub const MALICIOUS_KIND: usize = usize::MAX;

    /// The pseudo-action of a maliciously crashing process.
    pub const MALICIOUS: ActionId = ActionId {
        kind: Self::MALICIOUS_KIND,
        slot: None,
    };

    /// A global (non-parameterized) action instance.
    pub const fn global(kind: usize) -> Self {
        ActionId { kind, slot: None }
    }

    /// A per-neighbor action instance for the given neighbor slot.
    pub const fn at_slot(kind: usize, slot: usize) -> Self {
        ActionId {
            kind,
            slot: Some(slot),
        }
    }

    /// Whether this is the malicious pseudo-action.
    pub fn is_malicious(self) -> bool {
        self.kind == Self::MALICIOUS_KIND
    }
}

/// A scheduled (process, action-instance) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Move {
    /// The process taking the step.
    pub pid: ProcessId,
    /// The action instance it executes.
    pub action: ActionId,
}

/// One variable assignment produced by executing an action.
///
/// Commands in the model assign to the process's own local variables and to
/// shared edge variables. The engine enforces the write contract on every
/// application via [`crate::footprint::check_write`]: edge writes must
/// target an incident edge, and malicious-step edge writes must pass the
/// algorithm's declared capability ([`Algorithm::malicious_edge_allowed`]).
/// Violations panic under `debug_assertions` and are rejected and counted
/// (`engine.write_violations`) in release builds.
pub enum Write<A: Algorithm + ?Sized> {
    /// Replace the executing process's local state.
    Local(A::Local),
    /// Replace the shared variable on the edge to `neighbor`.
    Edge {
        /// The neighbor at the other end of the edge being written.
        neighbor: ProcessId,
        /// The new value of the shared variable.
        value: A::Edge,
    },
}

impl<A: Algorithm + ?Sized> fmt::Debug for Write<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Write::Local(l) => f.debug_tuple("Local").field(l).finish(),
            Write::Edge { neighbor, value } => f
                .debug_struct("Edge")
                .field("neighbor", neighbor)
                .field("value", value)
                .finish(),
        }
    }
}

/// A guarded-command distributed algorithm in the shared-memory model.
pub trait Algorithm {
    /// Local (per-process) state.
    type Local: Clone + fmt::Debug + PartialEq;
    /// Shared (per-edge) state.
    type Edge: Clone + fmt::Debug + PartialEq;

    /// Algorithm name for reports.
    fn name(&self) -> &str;

    /// The action kinds of every process, in guard-evaluation order.
    fn kinds(&self) -> &[ActionKind];

    /// The legitimate initial local state of process `p`.
    fn init_local(&self, topo: &Topology, p: ProcessId) -> Self::Local;

    /// The legitimate initial shared state of edge `e`.
    fn init_edge(&self, topo: &Topology, e: EdgeId) -> Self::Edge;

    /// Whether `action`'s guard holds for the process observed by `view`.
    fn enabled(&self, view: &View<'_, Self>, action: ActionId) -> bool;

    /// The command of `action`: the writes to apply atomically.
    ///
    /// Called only when [`Self::enabled`] returned `true` for the same
    /// view. Must not write edges to non-neighbors.
    fn execute(&self, view: &View<'_, Self>, action: ActionId) -> Vec<Write<Self>>;

    /// An arbitrary (transient-fault) value for `p`'s local state.
    fn corrupt_local(&self, rng: &mut StdRng, topo: &Topology, p: ProcessId) -> Self::Local;

    /// An arbitrary (transient-fault) value for edge `e`'s shared state.
    fn corrupt_edge(&self, rng: &mut StdRng, topo: &Topology, e: EdgeId) -> Self::Edge;

    /// One arbitrary step of a maliciously crashing process: any writes the
    /// process is *capable* of performing (its own locals, plus shared-edge
    /// updates allowed by the model's restricted-update rule).
    ///
    /// The default corrupts the process's local state only.
    fn malicious_writes(&self, view: &View<'_, Self>, rng: &mut StdRng) -> Vec<Write<Self>>
    where
        Self: Sized,
    {
        vec![Write::Local(self.corrupt_local(
            rng,
            view.topology(),
            view.pid(),
        ))]
    }

    /// The restricted-update capability (paper §2): whether a *malicious*
    /// step of `p` is permitted to write `value` to the shared variable on
    /// the edge towards `neighbor`. Regular commands are not restricted
    /// beyond adjacency; malicious steps may only perform edge updates the
    /// model grants them (e.g. the diners algorithm lets a crashing
    /// process yield priority, never seize it).
    ///
    /// The default capability is empty: malicious steps may corrupt the
    /// process's own local state only (matching the default
    /// [`Self::malicious_writes`]). Both the engine's runtime contract
    /// check and the `footprint` locality certifier enforce this.
    fn malicious_edge_allowed(
        &self,
        topo: &Topology,
        p: ProcessId,
        neighbor: ProcessId,
        value: &Self::Edge,
    ) -> bool {
        let _ = (topo, p, neighbor, value);
        false
    }
}

/// An [`Algorithm`] that solves (some variant of) the diners problem and
/// can report which phase a local state is in. The engine uses this to
/// maintain service metrics (meals, response times, exclusion violations).
pub trait DinerAlgorithm: Algorithm {
    /// The `T`/`H`/`E` phase encoded in a local state.
    fn phase(&self, local: &Self::Local) -> Phase;
}

/// The complete shared-memory state of a system: one local value per
/// process, one shared value per edge.
pub struct SystemState<A: Algorithm + ?Sized> {
    locals: Vec<A::Local>,
    edges: Vec<A::Edge>,
}

impl<A: Algorithm + ?Sized> Clone for SystemState<A> {
    fn clone(&self) -> Self {
        SystemState {
            locals: self.locals.clone(),
            edges: self.edges.clone(),
        }
    }
}

impl<A: Algorithm + ?Sized> fmt::Debug for SystemState<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemState")
            .field("locals", &self.locals)
            .field("edges", &self.edges)
            .finish()
    }
}

impl<A: Algorithm + ?Sized> PartialEq for SystemState<A> {
    fn eq(&self, other: &Self) -> bool {
        self.locals == other.locals && self.edges == other.edges
    }
}

impl<A: Algorithm> SystemState<A> {
    /// Assemble a state from raw vectors (one local per process, one value
    /// per edge, in id order). Used by the packed-state decoder.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the topology.
    pub fn from_parts(topo: &Topology, locals: Vec<A::Local>, edges: Vec<A::Edge>) -> Self {
        assert_eq!(locals.len(), topo.len(), "one local per process");
        assert_eq!(edges.len(), topo.edge_count(), "one value per edge");
        SystemState { locals, edges }
    }

    /// The legitimate initial state defined by the algorithm.
    pub fn initial(alg: &A, topo: &Topology) -> Self {
        SystemState {
            locals: topo.processes().map(|p| alg.init_local(topo, p)).collect(),
            edges: (0..topo.edge_count())
                .map(|e| alg.init_edge(topo, EdgeId(e)))
                .collect(),
        }
    }

    /// A fully arbitrary state (models a transient fault that corrupted
    /// every variable in the system). Deterministic in `rng`.
    pub fn corrupt_all(&mut self, alg: &A, topo: &Topology, rng: &mut StdRng) {
        for p in topo.processes() {
            self.locals[p.index()] = alg.corrupt_local(rng, topo, p);
        }
        for e in 0..topo.edge_count() {
            self.edges[e] = alg.corrupt_edge(rng, topo, EdgeId(e));
        }
    }

    /// Corrupt only the variables process `p` can write: its local state
    /// (shared edges are left alone; use [`Algorithm::malicious_writes`]
    /// for capability-restricted shared-variable corruption).
    pub fn corrupt_process(&mut self, alg: &A, topo: &Topology, rng: &mut StdRng, p: ProcessId) {
        self.locals[p.index()] = alg.corrupt_local(rng, topo, p);
    }

    /// The local state of `p`.
    #[inline]
    pub fn local(&self, p: ProcessId) -> &A::Local {
        &self.locals[p.index()]
    }

    /// Mutable access to the local state of `p` (used by scenario builders
    /// and fault injection; regular computation goes through the engine).
    #[inline]
    pub fn local_mut(&mut self, p: ProcessId) -> &mut A::Local {
        &mut self.locals[p.index()]
    }

    /// The shared state of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &A::Edge {
        &self.edges[e.index()]
    }

    /// Mutable access to the shared state of edge `e`.
    #[inline]
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut A::Edge {
        &mut self.edges[e.index()]
    }

    /// All locals, indexed by process.
    #[inline]
    pub fn locals(&self) -> &[A::Local] {
        &self.locals
    }

    /// All edge values, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[A::Edge] {
        &self.edges
    }
}

/// A process's read-only window onto the system: its own state, its
/// neighbors' locals and the shared variables on its incident edges —
/// exactly the variables a guard may mention in the model.
///
/// A view built with [`View::traced`] additionally records every
/// state-reading accessor call in an [`crate::footprint::AccessLog`];
/// this is how the `footprint` contract analysis infers read sets.
/// Tracing changes what accessors *record*, never what they return.
pub struct View<'a, A: Algorithm + ?Sized> {
    pid: ProcessId,
    topo: &'a Topology,
    state: &'a SystemState<A>,
    needs: bool,
    log: Option<&'a crate::footprint::AccessLog>,
}

impl<'a, A: Algorithm> View<'a, A> {
    /// Construct a view for process `p`. `needs` is the current value of
    /// the paper's `needs():p` function (supplied by the workload).
    pub fn new(topo: &'a Topology, state: &'a SystemState<A>, pid: ProcessId, needs: bool) -> Self {
        View {
            pid,
            topo,
            state,
            needs,
            log: None,
        }
    }

    /// Construct an instrumented view that records every state read in
    /// `log`. Used by the `footprint` contract analysis: traced views are
    /// deliberately *permissive* — [`View::neighbor_local`] does not
    /// assert adjacency, so an ill-behaved guard produces a recorded,
    /// nameable out-of-neighborhood read instead of a panic.
    pub fn traced(
        topo: &'a Topology,
        state: &'a SystemState<A>,
        pid: ProcessId,
        needs: bool,
        log: &'a crate::footprint::AccessLog,
    ) -> Self {
        View {
            pid,
            topo,
            state,
            needs,
            log: Some(log),
        }
    }

    /// The observing process.
    #[inline]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The topology (for `D`, degree, neighbor iteration).
    #[inline]
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The paper's `needs():p` — whether the process currently wants to eat.
    #[inline]
    pub fn needs(&self) -> bool {
        if let Some(log) = self.log {
            log.record(crate::footprint::ReadAccess::Needs);
        }
        self.needs
    }

    /// The graph diameter `D` (known to every process, per the paper).
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.topo.diameter()
    }

    /// This process's local state.
    #[inline]
    pub fn local(&self) -> &'a A::Local {
        if let Some(log) = self.log {
            log.record(crate::footprint::ReadAccess::OwnLocal);
        }
        self.state.local(self.pid)
    }

    /// This process's neighbors (sorted).
    #[inline]
    pub fn neighbors(&self) -> &'a [ProcessId] {
        self.topo.neighbors(self.pid)
    }

    /// A neighbor's local state.
    ///
    /// # Panics
    ///
    /// Panics (`debug_assertions`) if `q` is not a neighbor of this
    /// process — except on traced views, which record the out-of-bounds
    /// read for the locality certifier to report instead.
    #[inline]
    pub fn neighbor_local(&self, q: ProcessId) -> &'a A::Local {
        if let Some(log) = self.log {
            log.record(crate::footprint::ReadAccess::Local(q));
        } else {
            debug_assert!(
                self.topo.are_neighbors(self.pid, q),
                "{q} is not a neighbor of {}",
                self.pid
            );
        }
        self.state.local(q)
    }

    /// The shared variable on the edge to neighbor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a neighbor of this process.
    #[inline]
    pub fn edge_to(&self, q: ProcessId) -> &'a A::Edge {
        if let Some(log) = self.log {
            log.record(crate::footprint::ReadAccess::Edge(q));
        }
        let e = self
            .topo
            .edge_between(self.pid, q)
            .unwrap_or_else(|| panic!("{q} is not a neighbor of {}", self.pid));
        self.state.edge(e)
    }

    /// The neighbor in slot `slot` of this process's adjacency list.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn neighbor_at(&self, slot: usize) -> ProcessId {
        self.neighbors()[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    /// A minimal test algorithm: each process holds a counter; the single
    /// global action increments it when it is below the neighbor max + 1.
    struct Count;

    const COUNT_KINDS: &[ActionKind] = &[ActionKind {
        name: "bump",
        per_neighbor: false,
    }];

    impl Algorithm for Count {
        type Local = u32;
        type Edge = ();

        fn name(&self) -> &str {
            "count"
        }
        fn kinds(&self) -> &[ActionKind] {
            COUNT_KINDS
        }
        fn init_local(&self, _t: &Topology, _p: ProcessId) -> u32 {
            0
        }
        fn init_edge(&self, _t: &Topology, _e: EdgeId) {}
        fn enabled(&self, view: &View<'_, Self>, a: ActionId) -> bool {
            a.kind == 0 && *view.local() < 10
        }
        fn execute(&self, view: &View<'_, Self>, _a: ActionId) -> Vec<Write<Self>> {
            vec![Write::Local(view.local() + 1)]
        }
        fn corrupt_local(&self, rng: &mut StdRng, _t: &Topology, _p: ProcessId) -> u32 {
            use rand::Rng;
            rng.gen_range(0..100)
        }
        fn corrupt_edge(&self, _r: &mut StdRng, _t: &Topology, _e: EdgeId) {}
    }

    #[test]
    fn initial_state_uses_algorithm_inits() {
        let t = Topology::ring(4);
        let s = SystemState::initial(&Count, &t);
        assert!(t.processes().all(|p| *s.local(p) == 0));
        assert_eq!(s.locals().len(), 4);
        assert_eq!(s.edges().len(), 4);
    }

    #[test]
    fn view_exposes_neighborhood() {
        let t = Topology::line(3);
        let mut s = SystemState::initial(&Count, &t);
        *s.local_mut(ProcessId(0)) = 7;
        let v: View<'_, Count> = View::new(&t, &s, ProcessId(1), true);
        assert_eq!(v.pid(), ProcessId(1));
        assert!(v.needs());
        assert_eq!(*v.neighbor_local(ProcessId(0)), 7);
        assert_eq!(v.neighbors(), &[ProcessId(0), ProcessId(2)]);
        assert_eq!(v.neighbor_at(0), ProcessId(0));
        assert_eq!(v.diameter(), 2);
    }

    /// Satellite coverage for the footprint instrumentation: `View` must
    /// expose *exactly* the closed neighborhood, so the traced accessors
    /// cannot silently miss an access path. Brute-force cross-check on
    /// degree-0 (singleton line), leaf/middle (line), hub/leaf (star) and
    /// interior/corner (grid) cases.
    #[test]
    fn view_exposes_exactly_the_closed_neighborhood() {
        for t in [
            Topology::line(1),
            Topology::line(4),
            Topology::star(5),
            Topology::grid(3, 3),
        ] {
            let mut s = SystemState::initial(&Count, &t);
            for p in t.processes() {
                *s.local_mut(p) = p.index() as u32;
            }
            for p in t.processes() {
                let v: View<'_, Count> = View::new(&t, &s, p, true);
                // Own state is always visible.
                assert_eq!(*v.local(), p.index() as u32);
                assert_eq!(v.pid(), p);
                // The neighbor list is exactly {q : q ~ p}, sorted.
                let expect: Vec<ProcessId> =
                    t.processes().filter(|&q| t.are_neighbors(p, q)).collect();
                assert_eq!(v.neighbors(), expect.as_slice(), "{} at {p}", t.name());
                assert_eq!(v.neighbors().len(), t.degree(p));
                // Every exposed neighbor is reachable through every
                // accessor path: by id, by slot, and its shared edge.
                for (slot, &q) in expect.iter().enumerate() {
                    assert_eq!(v.neighbor_at(slot), q);
                    assert_eq!(*v.neighbor_local(q), q.index() as u32);
                    let _: &() = v.edge_to(q);
                }
            }
        }
    }

    /// Degree-0 process: the closed neighborhood is the process itself.
    #[test]
    fn degree_zero_view_has_no_neighbors() {
        let t = Topology::line(1);
        let s = SystemState::initial(&Count, &t);
        let v: View<'_, Count> = View::new(&t, &s, ProcessId(0), false);
        assert!(v.neighbors().is_empty());
        assert!(!v.needs());
        assert_eq!(*v.local(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is not a neighbor")]
    fn untraced_view_rejects_non_neighbor_local() {
        let t = Topology::line(3);
        let s = SystemState::initial(&Count, &t);
        let v: View<'_, Count> = View::new(&t, &s, ProcessId(0), true);
        let _ = v.neighbor_local(ProcessId(2));
    }

    #[test]
    #[should_panic(expected = "is not a neighbor")]
    fn view_rejects_non_neighbor_edge() {
        let t = Topology::line(3);
        let s = SystemState::initial(&Count, &t);
        let v: View<'_, Count> = View::new(&t, &s, ProcessId(0), true);
        let _ = v.edge_to(ProcessId(2));
    }

    #[test]
    fn default_malicious_capability_is_empty() {
        let t = Topology::line(2);
        assert!(!Count.malicious_edge_allowed(&t, ProcessId(0), ProcessId(1), &()));
    }

    #[test]
    fn corrupt_all_is_deterministic_in_seed() {
        let t = Topology::ring(6);
        let mut a = SystemState::initial(&Count, &t);
        let mut b = SystemState::initial(&Count, &t);
        a.corrupt_all(&Count, &t, &mut crate::rng::rng(9));
        b.corrupt_all(&Count, &t, &mut crate::rng::rng(9));
        assert_eq!(a, b);
        let mut c = SystemState::initial(&Count, &t);
        c.corrupt_all(&Count, &t, &mut crate::rng::rng(10));
        assert_ne!(a, c);
    }

    #[test]
    fn action_id_helpers() {
        assert!(ActionId::MALICIOUS.is_malicious());
        assert!(!ActionId::global(0).is_malicious());
        assert_eq!(ActionId::at_slot(4, 2).slot, Some(2));
    }

    #[test]
    fn phase_displays_like_the_paper() {
        assert_eq!(Phase::Thinking.to_string(), "T");
        assert_eq!(Phase::Hungry.to_string(), "H");
        assert_eq!(Phase::Eating.to_string(), "E");
    }
}
