//! Compact bit-packed state encoding.
//!
//! The explorer's visited set used to intern a full cloned [`SystemState`]
//! per reachable state — on toy-ring(12) that is ~60 heap bytes per state
//! (two `Vec` headers plus the per-process and per-edge payloads) for
//! information worth 24 *bits*. [`StateCodec`] lets an algorithm declare a
//! fixed-width binary encoding for its local and edge values; [`Codec`]
//! then packs a whole system state into a small `[u64]` window inside a
//! flat arena, and the explorer stores *only those words*, decoding on
//! fingerprint-collision compare and violation-trace reconstruction.
//!
//! # Injectivity contract
//!
//! For the packed arena to be a sound deduplication key, encoding must be
//! injective on the *reachable-and-corruptible* value domain:
//!
//! * `decode_local(topo, p, encode_local(topo, p, v)) == v` for every value
//!   `v` that [`Algorithm::init_local`], [`Algorithm::corrupt_local`] or
//!   any [`Algorithm::execute`] write can produce (and likewise for edges);
//! * `encode_local` must not emit a word wider than
//!   [`StateCodec::local_bits`] — widths are fixed per topology, and
//!   [`set_bits`] debug-asserts the value fits, so a truncated field would
//!   alias two distinct states and is caught in debug runs.
//!
//! Two distinct states then pack to distinct words, so equality of packed
//! windows is equality of states — no false dedup merges. The differential
//! suites sweep `decode(encode(s)) == s` over every algorithm × topology
//! family in the repo, including corruption-lattice states.
//!
//! # Symmetry hooks
//!
//! [`StateCodec`] also carries the per-value permutation actions used by
//! [`crate::symmetry`]: a topology automorphism π acts on a state by moving
//! process p's local to position π(p) *and* rewriting any process
//! identifiers stored inside values (e.g. the diners `ancestor` endpoint on
//! an edge). Algorithms whose guards depend on absolute process ids (the
//! toy diners break ties by `q < p`) are *not* equivariant and must leave
//! [`StateCodec::respects_symmetry`] at its `false` default; symmetry
//! reduction then degrades to the identity group.

use crate::algorithm::{Algorithm, Phase, SystemState};
use crate::graph::{EdgeId, ProcessId, Topology};
use crate::symmetry::Perm;

/// An [`Algorithm`] with a fixed-width binary encoding of its state values.
///
/// See the [module docs](self) for the injectivity contract and the role of
/// the symmetry hooks.
pub trait StateCodec: Algorithm {
    /// Width in bits of one encoded local value on `topo`. Must be ≤ 64.
    fn local_bits(&self, topo: &Topology) -> u32;

    /// Width in bits of one encoded edge value on `topo`. Must be ≤ 64.
    /// Zero is allowed (unit edge labels occupy no space).
    fn edge_bits(&self, topo: &Topology) -> u32;

    /// Encode `p`'s local value into the low [`Self::local_bits`] bits.
    fn encode_local(&self, topo: &Topology, p: ProcessId, local: &Self::Local) -> u64;

    /// Invert [`Self::encode_local`].
    fn decode_local(&self, topo: &Topology, p: ProcessId, bits: u64) -> Self::Local;

    /// Encode edge `e`'s shared value into the low [`Self::edge_bits`] bits.
    fn encode_edge(&self, topo: &Topology, e: EdgeId, value: &Self::Edge) -> u64;

    /// Invert [`Self::encode_edge`].
    fn decode_edge(&self, topo: &Topology, e: EdgeId, bits: u64) -> Self::Edge;

    /// Whether the algorithm is *equivariant* under topology automorphisms:
    /// permuting a state by any automorphism π (via the `permute_*` hooks)
    /// and running the algorithm commutes. Required for sound symmetry
    /// reduction; defaults to `false` so id-asymmetric algorithms cannot be
    /// silently mis-reduced.
    fn respects_symmetry(&self) -> bool {
        false
    }

    /// How an automorphism rewrites process ids *inside* a local value.
    /// `p` is the value's original position. Default: values carry no ids.
    fn permute_local(
        &self,
        _topo: &Topology,
        _perm: &Perm,
        _p: ProcessId,
        local: &Self::Local,
    ) -> Self::Local {
        local.clone()
    }

    /// How an automorphism rewrites process ids *inside* an edge value.
    /// `e` is the value's original edge. Default: values carry no ids.
    fn permute_edge(
        &self,
        _topo: &Topology,
        _perm: &Perm,
        _e: EdgeId,
        value: &Self::Edge,
    ) -> Self::Edge {
        value.clone()
    }
}

/// Bit mask with the low `width` bits set (`width ≤ 64`).
#[inline]
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Read `width` bits at bit offset `offset` from a word slice. Fields may
/// straddle a word boundary; `width == 0` reads as 0.
#[inline]
pub fn get_bits(words: &[u64], offset: u64, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    debug_assert!(width <= 64);
    let word = (offset / 64) as usize;
    let bit = (offset % 64) as u32;
    let lo = words[word] >> bit;
    let in_word = 64 - bit;
    let v = if width > in_word {
        // `width > in_word` forces `in_word < 64`, so the shift is defined.
        lo | (words[word + 1] << in_word)
    } else {
        lo
    };
    v & mask(width)
}

/// Write `width` bits of `value` at bit offset `offset`, preserving all
/// surrounding bits. Debug-asserts `value` fits in `width` (a wider value
/// would silently alias distinct states).
#[inline]
pub fn set_bits(words: &mut [u64], offset: u64, width: u32, value: u64) {
    if width == 0 {
        return;
    }
    debug_assert!(width <= 64);
    debug_assert!(
        width == 64 || value <= mask(width),
        "value {value:#x} exceeds field width {width}"
    );
    let word = (offset / 64) as usize;
    let bit = (offset % 64) as u32;
    let m = mask(width);
    words[word] = (words[word] & !(m << bit)) | ((value & m) << bit);
    let in_word = 64 - bit;
    if width > in_word {
        // As above: `in_word < 64` here, so `value >> in_word` is defined.
        let hi = width - in_word;
        let hm = mask(hi);
        words[word + 1] = (words[word + 1] & !hm) | ((value >> in_word) & hm);
    }
}

/// Encode a [`Phase`] in 2 bits (3 values; `0b11` is never produced).
#[inline]
pub fn phase_to_bits(p: Phase) -> u64 {
    match p {
        Phase::Thinking => 0,
        Phase::Hungry => 1,
        Phase::Eating => 2,
    }
}

/// Invert [`phase_to_bits`].
///
/// # Panics
///
/// Panics on `0b11`, which [`phase_to_bits`] never emits — reaching it
/// means the packed arena was corrupted.
#[inline]
pub fn phase_from_bits(bits: u64) -> Phase {
    match bits {
        0 => Phase::Thinking,
        1 => Phase::Hungry,
        2 => Phase::Eating,
        _ => panic!("invalid phase encoding {bits}"),
    }
}

/// The fixed bit layout of a packed state on one topology:
/// `[local p0 .. local p(n-1)][edge e0 .. edge e(m-1)]`, each field at the
/// width the codec declared, fields freely straddling `u64` boundaries.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    local_bits: u32,
    edge_bits: u32,
    n: usize,
    m: usize,
    words: usize,
}

impl Layout {
    /// Compute the layout for `alg` on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the codec declares a field wider than 64 bits.
    pub fn new<A: StateCodec>(alg: &A, topo: &Topology) -> Self {
        let local_bits = alg.local_bits(topo);
        let edge_bits = alg.edge_bits(topo);
        assert!(local_bits <= 64, "local field wider than 64 bits");
        assert!(edge_bits <= 64, "edge field wider than 64 bits");
        let n = topo.len();
        let m = topo.edge_count();
        let total = n as u64 * local_bits as u64 + m as u64 * edge_bits as u64;
        // At least one word so every state has a non-empty key.
        let words = (total.div_ceil(64) as usize).max(1);
        Layout {
            local_bits,
            edge_bits,
            n,
            m,
            words,
        }
    }

    /// Words per packed state (the arena stride). Always ≥ 1.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Total payload bits per state.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.n as u64 * self.local_bits as u64 + self.m as u64 * self.edge_bits as u64
    }

    /// Bit offset of process `p`'s local field.
    #[inline]
    pub fn local_offset(&self, p: ProcessId) -> u64 {
        debug_assert!(p.index() < self.n);
        p.index() as u64 * self.local_bits as u64
    }

    /// Bit offset of edge `e`'s field.
    #[inline]
    pub fn edge_offset(&self, e: EdgeId) -> u64 {
        debug_assert!(e.index() < self.m);
        self.n as u64 * self.local_bits as u64 + e.index() as u64 * self.edge_bits as u64
    }

    /// Width of one local field.
    #[inline]
    pub fn local_bits(&self) -> u32 {
        self.local_bits
    }

    /// Width of one edge field.
    #[inline]
    pub fn edge_bits(&self) -> u32 {
        self.edge_bits
    }
}

/// A codec bound to one algorithm + topology: packs [`SystemState`]s into
/// fixed-stride `[u64]` windows and back.
pub struct Codec<'a, A: StateCodec> {
    alg: &'a A,
    topo: &'a Topology,
    layout: Layout,
}

impl<'a, A: StateCodec> Codec<'a, A> {
    /// Bind `alg`'s codec to `topo`.
    pub fn new(alg: &'a A, topo: &'a Topology) -> Self {
        let layout = Layout::new(alg, topo);
        Codec { alg, topo, layout }
    }

    /// The layout (field offsets, stride).
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Words per packed state.
    #[inline]
    pub fn words(&self) -> usize {
        self.layout.words
    }

    /// The bound topology.
    #[inline]
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The bound algorithm.
    #[inline]
    pub fn alg(&self) -> &'a A {
        self.alg
    }

    /// Pack `state` into `out` (`out.len() == self.words()`). Clears `out`
    /// first, so unused padding bits are always zero — packed windows of
    /// equal states are bytewise equal.
    pub fn encode_into(&self, state: &SystemState<A>, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.layout.words);
        out.fill(0);
        for (i, local) in state.locals().iter().enumerate() {
            let p = ProcessId(i);
            let v = self.alg.encode_local(self.topo, p, local);
            set_bits(out, self.layout.local_offset(p), self.layout.local_bits, v);
        }
        for (i, value) in state.edges().iter().enumerate() {
            let e = EdgeId(i);
            let v = self.alg.encode_edge(self.topo, e, value);
            set_bits(out, self.layout.edge_offset(e), self.layout.edge_bits, v);
        }
    }

    /// Pack `state` into a fresh vector.
    pub fn encode(&self, state: &SystemState<A>) -> Vec<u64> {
        let mut out = vec![0u64; self.layout.words];
        self.encode_into(state, &mut out);
        out
    }

    /// Unpack a window into an existing state (reusing its allocations).
    pub fn decode_into(&self, words: &[u64], out: &mut SystemState<A>) {
        debug_assert_eq!(words.len(), self.layout.words);
        for p in self.topo.processes() {
            let bits = get_bits(words, self.layout.local_offset(p), self.layout.local_bits);
            *out.local_mut(p) = self.alg.decode_local(self.topo, p, bits);
        }
        for i in 0..self.topo.edge_count() {
            let e = EdgeId(i);
            let bits = get_bits(words, self.layout.edge_offset(e), self.layout.edge_bits);
            *out.edge_mut(e) = self.alg.decode_edge(self.topo, e, bits);
        }
    }

    /// Unpack a window into a fresh state.
    pub fn decode(&self, words: &[u64]) -> SystemState<A> {
        debug_assert_eq!(words.len(), self.layout.words);
        let locals = self
            .topo
            .processes()
            .map(|p| {
                let bits = get_bits(words, self.layout.local_offset(p), self.layout.local_bits);
                self.alg.decode_local(self.topo, p, bits)
            })
            .collect();
        let edges = (0..self.topo.edge_count())
            .map(|i| {
                let e = EdgeId(i);
                let bits = get_bits(words, self.layout.edge_offset(e), self.layout.edge_bits);
                self.alg.decode_edge(self.topo, e, bits)
            })
            .collect();
        SystemState::from_parts(self.topo, locals, edges)
    }

    /// Overwrite one local field in a packed window.
    #[inline]
    pub fn set_local(&self, words: &mut [u64], p: ProcessId, local: &A::Local) {
        let v = self.alg.encode_local(self.topo, p, local);
        set_bits(
            words,
            self.layout.local_offset(p),
            self.layout.local_bits,
            v,
        );
    }

    /// Overwrite one edge field in a packed window.
    #[inline]
    pub fn set_edge(&self, words: &mut [u64], e: EdgeId, value: &A::Edge) {
        let v = self.alg.encode_edge(self.topo, e, value);
        set_bits(words, self.layout.edge_offset(e), self.layout.edge_bits, v);
    }

    /// Decode one local field from a packed window.
    #[inline]
    pub fn get_local(&self, words: &[u64], p: ProcessId) -> A::Local {
        let bits = get_bits(words, self.layout.local_offset(p), self.layout.local_bits);
        self.alg.decode_local(self.topo, p, bits)
    }

    /// Decode one edge field from a packed window.
    #[inline]
    pub fn get_edge(&self, words: &[u64], e: EdgeId) -> A::Edge {
        let bits = get_bits(words, self.layout.edge_offset(e), self.layout.edge_bits);
        self.alg.decode_edge(self.topo, e, bits)
    }

    /// Raw bits of one local field (no decode) — canonicalization moves
    /// value-free fields without round-tripping through the value type.
    #[inline]
    pub fn local_raw(&self, words: &[u64], p: ProcessId) -> u64 {
        get_bits(words, self.layout.local_offset(p), self.layout.local_bits)
    }

    /// Raw bits of one edge field (no decode).
    #[inline]
    pub fn edge_raw(&self, words: &[u64], e: EdgeId) -> u64 {
        get_bits(words, self.layout.edge_offset(e), self.layout.edge_bits)
    }

    /// Write raw bits into one local field.
    #[inline]
    pub fn set_local_raw(&self, words: &mut [u64], p: ProcessId, bits: u64) {
        set_bits(
            words,
            self.layout.local_offset(p),
            self.layout.local_bits,
            bits,
        );
    }

    /// Write raw bits into one edge field.
    #[inline]
    pub fn set_edge_raw(&self, words: &mut [u64], e: EdgeId, bits: u64) {
        set_bits(
            words,
            self.layout.edge_offset(e),
            self.layout.edge_bits,
            bits,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;
    use crate::toy::ToyDiners;

    #[test]
    fn bit_helpers_round_trip_within_a_word() {
        let mut w = vec![0u64; 2];
        set_bits(&mut w, 3, 5, 0b10110);
        assert_eq!(get_bits(&w, 3, 5), 0b10110);
        // Neighbors untouched.
        assert_eq!(get_bits(&w, 0, 3), 0);
        assert_eq!(get_bits(&w, 8, 8), 0);
    }

    #[test]
    fn bit_helpers_round_trip_across_word_boundary() {
        let mut w = vec![0u64; 3];
        // A 34-bit field starting at bit 60 straddles words 0 and 1.
        let v = 0x2_dead_beefu64 & mask(34);
        set_bits(&mut w, 60, 34, v);
        assert_eq!(get_bits(&w, 60, 34), v);
        // Overwrite with a different value; old bits must not linger.
        set_bits(&mut w, 60, 34, 0);
        assert_eq!(w, vec![0, 0, 0]);
    }

    #[test]
    fn full_width_fields_work() {
        let mut w = vec![0u64; 2];
        set_bits(&mut w, 64, 64, u64::MAX);
        assert_eq!(get_bits(&w, 64, 64), u64::MAX);
        assert_eq!(w[0], 0);
    }

    #[test]
    fn zero_width_fields_are_noops() {
        let mut w = vec![0u64; 1];
        set_bits(&mut w, 17, 0, 0);
        assert_eq!(get_bits(&w, 17, 0), 0);
        assert_eq!(w[0], 0);
    }

    #[test]
    fn phase_codec_round_trips() {
        for p in [Phase::Thinking, Phase::Hungry, Phase::Eating] {
            assert_eq!(phase_from_bits(phase_to_bits(p)), p);
        }
    }

    #[test]
    fn layout_packs_toy_ring_into_one_word() {
        // 12 processes × 2 bits + 12 edges × 0 bits = 24 bits → 1 word.
        let topo = Topology::ring(12);
        let layout = Layout::new(&ToyDiners, &topo);
        assert_eq!(layout.words(), 1);
        assert_eq!(layout.bits(), 24);
    }

    #[test]
    fn codec_round_trips_toy_states() {
        let topo = Topology::ring(5);
        let codec = Codec::new(&ToyDiners, &topo);
        let mut s = SystemState::initial(&ToyDiners, &topo);
        *s.local_mut(ProcessId(2)) = Phase::Eating;
        *s.local_mut(ProcessId(4)) = Phase::Hungry;
        let words = codec.encode(&s);
        assert_eq!(codec.decode(&words), s);
        let mut back = SystemState::initial(&ToyDiners, &topo);
        codec.decode_into(&words, &mut back);
        assert_eq!(back, s);
    }

    #[test]
    fn field_edits_match_full_reencode() {
        let topo = Topology::line(4);
        let codec = Codec::new(&ToyDiners, &topo);
        let mut s = SystemState::initial(&ToyDiners, &topo);
        let mut words = codec.encode(&s);
        *s.local_mut(ProcessId(1)) = Phase::Hungry;
        codec.set_local(&mut words, ProcessId(1), &Phase::Hungry);
        assert_eq!(words, codec.encode(&s));
        assert_eq!(codec.get_local(&words, ProcessId(1)), Phase::Hungry);
    }
}
