//! Conflict-graph topologies.
//!
//! The dining-philosophers problem is defined over an arbitrary symmetric
//! *neighbor relation* between processes. [`Topology`] is that relation,
//! together with the derived data the algorithm and its analysis need:
//! adjacency lists, per-edge indices, all-pairs BFS distances and the graph
//! diameter (the paper's constant `D`, assumed known to every process).
//!
//! Constructors are provided for all the standard experiment families
//! (ring, line, grid, star, complete, binary tree, random connected graphs)
//! as well as from explicit edge lists.

use std::collections::BTreeSet;
use std::fmt;

use rand::Rng;

use crate::rng;

/// Identifier of a process: a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// Identifier of an undirected edge: a dense index into [`Topology::edges`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The constructor family a [`Topology`] came from.
///
/// The symmetry-reduced explorer ([`crate::symmetry`]) uses this to pick
/// a known automorphism subgroup without solving graph isomorphism:
/// rings carry their full dihedral group, lines their reflection, stars
/// the dihedral group on the leaf cycle. Families whose automorphisms
/// are not enumerated here (grid, complete, tree, random, custom edge
/// lists) conservatively report only the identity — symmetry reduction
/// on them is sound but a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Family {
    /// [`Topology::ring`].
    Ring,
    /// [`Topology::line`].
    Line,
    /// [`Topology::star`].
    Star,
    /// [`Topology::grid`].
    Grid,
    /// [`Topology::complete`].
    Complete,
    /// [`Topology::binary_tree`].
    BinaryTree,
    /// [`Topology::random_connected`].
    Random,
    /// [`Topology::from_edges`] (unknown structure).
    Custom,
}

/// An immutable, connected, simple undirected graph over processes
/// `0..n`, with precomputed distances and diameter.
///
/// # Examples
///
/// ```
/// use diners_sim::graph::Topology;
/// let t = Topology::ring(6);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.diameter(), 3);
/// assert!(t.are_neighbors(0.into(), 5.into()));
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    family: Family,
    /// Sorted adjacency list per process.
    adj: Vec<Vec<ProcessId>>,
    /// Undirected edges as `(lo, hi)` pairs with `lo < hi`, sorted.
    edges: Vec<(ProcessId, ProcessId)>,
    /// `edge_of[p]` maps a neighbor slot of `p` to the edge id.
    edge_of: Vec<Vec<EdgeId>>,
    /// `closed[p]` is `p` followed by its sorted neighbors — the set of
    /// processes whose guards an action (or arbitrary write) at `p` can
    /// change, precomputed for the engine's dirty-set invalidation.
    closed: Vec<Vec<ProcessId>>,
    /// All-pairs hop distances.
    dist: Vec<Vec<u32>>,
    diameter: u32,
    name: String,
}

impl Topology {
    /// Build a topology from an explicit edge list.
    ///
    /// Self-loops and duplicate edges are rejected; the graph must be
    /// connected and non-empty (a single isolated process is allowed and
    /// has diameter 0).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when the input is not a simple connected
    /// graph over `0..n`.
    pub fn from_edges(
        n: usize,
        edge_list: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        let mut set = BTreeSet::new();
        for (a, b) in edge_list {
            if a >= n || b >= n {
                return Err(TopologyError::OutOfRange { a, b, n });
            }
            if a == b {
                return Err(TopologyError::SelfLoop(a));
            }
            let e = (a.min(b), a.max(b));
            if !set.insert(e) {
                return Err(TopologyError::Duplicate { a: e.0, b: e.1 });
            }
        }
        let edges: Vec<(ProcessId, ProcessId)> = set
            .iter()
            .map(|&(a, b)| (ProcessId(a), ProcessId(b)))
            .collect();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a.0].push(b);
            adj[b.0].push(a);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        let mut edge_of = vec![Vec::new(); n];
        for (p, list) in adj.iter().enumerate() {
            for &q in list {
                let key = (ProcessId(p.min(q.0)), ProcessId(p.max(q.0)));
                let eid = edges.binary_search(&key).expect("edge present");
                edge_of[p].push(EdgeId(eid));
            }
        }
        let closed = adj
            .iter()
            .enumerate()
            .map(|(p, list)| {
                let mut c = Vec::with_capacity(list.len() + 1);
                c.push(ProcessId(p));
                c.extend_from_slice(list);
                c
            })
            .collect();
        let dist = all_pairs_bfs(n, &adj);
        let mut diameter = 0;
        for row in &dist {
            for &d in row {
                if d == u32::MAX {
                    return Err(TopologyError::Disconnected);
                }
                diameter = diameter.max(d);
            }
        }
        Ok(Topology {
            n,
            family: Family::Custom,
            adj,
            edges,
            edge_of,
            closed,
            dist,
            diameter,
            name: format!("custom(n={n})"),
        })
    }

    /// A cycle `0 - 1 - ... - (n-1) - 0`. Requires `n >= 3`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring requires at least 3 processes");
        let mut t = Self::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
            .expect("ring is a valid topology");
        t.family = Family::Ring;
        t.name = format!("ring(n={n})");
        t
    }

    /// A path `0 - 1 - ... - (n-1)`. Requires `n >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn line(n: usize) -> Self {
        assert!(n >= 1, "line requires at least 1 process");
        let mut t = Self::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
            .expect("line is a valid topology");
        t.family = Family::Line;
        t.name = format!("line(n={n})");
        t
    }

    /// A `w x h` grid (4-neighborhood). Requires `w >= 1 && h >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(w: usize, h: usize) -> Self {
        assert!(w >= 1 && h >= 1, "grid requires positive dimensions");
        let idx = |x: usize, y: usize| y * w + x;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        let mut t = Self::from_edges(w * h, edges).expect("grid is a valid topology");
        t.family = Family::Grid;
        t.name = format!("grid({w}x{h})");
        t
    }

    /// A star: process 0 adjacent to every other process. Requires `n >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star requires at least 2 processes");
        let mut t = Self::from_edges(n, (1..n).map(|i| (0, i))).expect("star is a valid topology");
        t.family = Family::Star;
        t.name = format!("star(n={n})");
        t
    }

    /// The complete graph on `n` processes. Requires `n >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn complete(n: usize) -> Self {
        assert!(n >= 2, "complete graph requires at least 2 processes");
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        let mut t = Self::from_edges(n, edges).expect("complete graph is a valid topology");
        t.family = Family::Complete;
        t.name = format!("complete(n={n})");
        t
    }

    /// A complete binary tree with `n` nodes (heap layout: children of `i`
    /// are `2i+1`, `2i+2`). Requires `n >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn binary_tree(n: usize) -> Self {
        assert!(n >= 1, "tree requires at least 1 process");
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push(((i - 1) / 2, i));
        }
        let mut t = Self::from_edges(n, edges).expect("tree is a valid topology");
        t.family = Family::BinaryTree;
        t.name = format!("binary_tree(n={n})");
        t
    }

    /// A random connected graph: a random spanning tree plus each remaining
    /// pair independently with probability `p`. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `p` is not in `[0, 1]`.
    pub fn random_connected(n: usize, p: f64, seed: u64) -> Self {
        assert!(n >= 1, "random graph requires at least 1 process");
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        let mut r = rng::rng(rng::subseed(seed, 0xD1CE));
        let mut edges = BTreeSet::new();
        // Random spanning tree: attach each node to a uniformly random
        // earlier node (random recursive tree).
        for i in 1..n {
            let j = r.gen_range(0..i);
            edges.insert((j, i));
        }
        for a in 0..n {
            for b in a + 1..n {
                if r.gen_bool(p) {
                    edges.insert((a, b));
                }
            }
        }
        let mut t = Self::from_edges(n, edges).expect("random graph is a valid topology");
        t.family = Family::Random;
        t.name = format!("random(n={n},p={p},seed={seed})");
        t
    }

    /// The constructor family this topology came from (drives the
    /// automorphism group used by [`crate::symmetry`]).
    #[inline]
    pub fn family(&self) -> Family {
        self.family
    }

    /// Human-readable name of the topology family and parameters.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Override the topology's display name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of processes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology has no processes (never true for a
    /// successfully constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterator over all process ids.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n).map(ProcessId)
    }

    /// Sorted neighbors of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbors(&self, p: ProcessId) -> &[ProcessId] {
        &self.adj[p.0]
    }

    /// Degree of `p`.
    #[inline]
    pub fn degree(&self, p: ProcessId) -> usize {
        self.adj[p.0].len()
    }

    /// The closed neighborhood of `p`: `p` itself followed by its sorted
    /// neighbors. This is exactly the set of processes whose guard values
    /// an action at `p` can change (guards read only a process's own
    /// local, neighbor locals and incident edge variables — and `p` can
    /// write only its own local and incident edges, malicious steps
    /// included), so it is the engine's dirty set after a step at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn closed_neighborhood(&self, p: ProcessId) -> &[ProcessId] {
        &self.closed[p.0]
    }

    /// Maximum degree over all processes.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|p| self.adj[p].len()).max().unwrap_or(0)
    }

    /// All undirected edges as `(lo, hi)` pairs, sorted.
    #[inline]
    pub fn edges(&self) -> &[(ProcessId, ProcessId)] {
        &self.edges
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (ProcessId, ProcessId) {
        self.edges[e.0]
    }

    /// The edge id joining neighbors `p` and `q`, if any.
    pub fn edge_between(&self, p: ProcessId, q: ProcessId) -> Option<EdgeId> {
        let key = (ProcessId(p.0.min(q.0)), ProcessId(p.0.max(q.0)));
        self.edges.binary_search(&key).ok().map(EdgeId)
    }

    /// Edge ids incident to `p`, parallel to [`Self::neighbors`].
    #[inline]
    pub fn incident_edges(&self, p: ProcessId) -> &[EdgeId] {
        &self.edge_of[p.0]
    }

    /// Whether `p` and `q` are joined by an edge.
    pub fn are_neighbors(&self, p: ProcessId, q: ProcessId) -> bool {
        self.edge_between(p, q).is_some()
    }

    /// Hop distance between `p` and `q`.
    #[inline]
    pub fn distance(&self, p: ProcessId, q: ProcessId) -> u32 {
        self.dist[p.0][q.0]
    }

    /// Minimum distance from `p` to any process in `set`; `None` if the
    /// set is empty.
    pub fn distance_to_set<'a>(
        &self,
        p: ProcessId,
        set: impl IntoIterator<Item = &'a ProcessId>,
    ) -> Option<u32> {
        set.into_iter().map(|&q| self.distance(p, q)).min()
    }

    /// The graph diameter — the paper's constant `D`.
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.diameter
    }

    /// The neighbor-slot index of `q` in `p`'s adjacency list.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a neighbor of `p`.
    pub fn slot_of(&self, p: ProcessId, q: ProcessId) -> usize {
        self.adj[p.0]
            .binary_search(&q)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {p}"))
    }
}

/// Error constructing a [`Topology`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// No processes.
    Empty,
    /// An edge endpoint is not in `0..n`.
    OutOfRange {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
        /// Number of processes.
        n: usize,
    },
    /// An edge joins a process to itself.
    SelfLoop(usize),
    /// The same undirected edge appears twice.
    Duplicate {
        /// Lower endpoint.
        a: usize,
        /// Higher endpoint.
        b: usize,
    },
    /// The graph is not connected.
    Disconnected,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has no processes"),
            TopologyError::OutOfRange { a, b, n } => {
                write!(f, "edge ({a},{b}) out of range for {n} processes")
            }
            TopologyError::SelfLoop(p) => write!(f, "self-loop at process {p}"),
            TopologyError::Duplicate { a, b } => write!(f, "duplicate edge ({a},{b})"),
            TopologyError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl std::error::Error for TopologyError {}

fn all_pairs_bfs(n: usize, adj: &[Vec<ProcessId>]) -> Vec<Vec<u32>> {
    let mut dist = vec![vec![u32::MAX; n]; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        let row = &mut dist[s];
        row[s] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = row[u];
            for &v in &adj[u] {
                if row[v.0] == u32::MAX {
                    row[v.0] = du + 1;
                    queue.push_back(v.0);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_metrics() {
        let t = Topology::ring(8);
        assert_eq!(t.len(), 8);
        assert_eq!(t.edge_count(), 8);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.degree(ProcessId(0)), 2);
        assert_eq!(t.distance(ProcessId(0), ProcessId(4)), 4);
        assert_eq!(t.distance(ProcessId(0), ProcessId(7)), 1);
    }

    #[test]
    fn line_metrics() {
        let t = Topology::line(5);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.degree(ProcessId(0)), 1);
        assert_eq!(t.degree(ProcessId(2)), 2);
        assert_eq!(t.distance(ProcessId(0), ProcessId(4)), 4);
    }

    #[test]
    fn single_process_line() {
        let t = Topology::line(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.diameter(), 0);
    }

    #[test]
    fn grid_metrics() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.len(), 9);
        assert_eq!(t.edge_count(), 12);
        assert_eq!(t.diameter(), 4);
        // Center has degree 4.
        assert_eq!(t.degree(ProcessId(4)), 4);
    }

    #[test]
    fn star_metrics() {
        let t = Topology::star(6);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.degree(ProcessId(0)), 5);
        assert_eq!(t.degree(ProcessId(3)), 1);
    }

    #[test]
    fn complete_metrics() {
        let t = Topology::complete(5);
        assert_eq!(t.edge_count(), 10);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn binary_tree_metrics() {
        let t = Topology::binary_tree(7);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.diameter(), 4); // leaf to leaf through root
        assert_eq!(t.degree(ProcessId(0)), 2);
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..20 {
            let t = Topology::random_connected(16, 0.1, seed);
            assert_eq!(t.len(), 16);
            // connectivity is established by successful construction
            let t2 = Topology::random_connected(16, 0.1, seed);
            assert_eq!(t.edges(), t2.edges());
        }
    }

    #[test]
    fn random_connected_p_zero_is_a_tree() {
        let t = Topology::random_connected(12, 0.0, 3);
        assert_eq!(t.edge_count(), 11);
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert_eq!(
            Topology::from_edges(0, []).unwrap_err(),
            TopologyError::Empty
        );
        assert_eq!(
            Topology::from_edges(2, [(0, 0)]).unwrap_err(),
            TopologyError::SelfLoop(0)
        );
        assert_eq!(
            Topology::from_edges(2, [(0, 1), (1, 0)]).unwrap_err(),
            TopologyError::Duplicate { a: 0, b: 1 }
        );
        assert_eq!(
            Topology::from_edges(2, [(0, 5)]).unwrap_err(),
            TopologyError::OutOfRange { a: 0, b: 5, n: 2 }
        );
        assert_eq!(
            Topology::from_edges(3, [(0, 1)]).unwrap_err(),
            TopologyError::Disconnected
        );
    }

    #[test]
    fn edge_lookup_roundtrip() {
        let t = Topology::ring(5);
        for &(a, b) in t.edges() {
            let e = t.edge_between(a, b).unwrap();
            assert_eq!(t.endpoints(e), (a, b));
            assert_eq!(t.edge_between(b, a), Some(e));
        }
        assert_eq!(t.edge_between(ProcessId(0), ProcessId(2)), None);
    }

    #[test]
    fn incident_edges_parallel_to_neighbors() {
        let t = Topology::grid(3, 2);
        for p in t.processes() {
            let ns = t.neighbors(p);
            let es = t.incident_edges(p);
            assert_eq!(ns.len(), es.len());
            for (q, e) in ns.iter().zip(es) {
                let (a, b) = t.endpoints(*e);
                assert!((a == p && b == *q) || (a == *q && b == p));
            }
        }
    }

    #[test]
    fn closed_neighborhood_is_self_then_neighbors() {
        let t = Topology::grid(3, 2);
        for p in t.processes() {
            let cn = t.closed_neighborhood(p);
            assert_eq!(cn[0], p, "closed neighborhood starts with the process");
            assert_eq!(&cn[1..], t.neighbors(p));
        }
        let single = Topology::line(1);
        assert_eq!(single.closed_neighborhood(ProcessId(0)), &[ProcessId(0)]);
    }

    #[test]
    fn slot_of_matches_neighbor_order() {
        let t = Topology::star(5);
        let hub = ProcessId(0);
        for (i, &q) in t.neighbors(hub).iter().enumerate() {
            assert_eq!(t.slot_of(hub, q), i);
        }
    }

    #[test]
    #[should_panic(expected = "not a neighbor")]
    fn slot_of_panics_for_non_neighbor() {
        let t = Topology::line(4);
        t.slot_of(ProcessId(0), ProcessId(3));
    }

    #[test]
    fn distance_to_set() {
        let t = Topology::line(6);
        let dead = [ProcessId(0)];
        assert_eq!(t.distance_to_set(ProcessId(3), dead.iter()), Some(3));
        assert_eq!(t.distance_to_set(ProcessId(3), [].iter()), None);
    }

    #[test]
    fn diameter_matches_bfs_extremes() {
        let t = Topology::binary_tree(15);
        let mut best = 0;
        for a in t.processes() {
            for b in t.processes() {
                best = best.max(t.distance(a, b));
            }
        }
        assert_eq!(best, t.diameter());
    }
}
