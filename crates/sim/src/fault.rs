//! Fault model and fault injection plans.
//!
//! The paper's fault taxonomy (§1):
//!
//! * **Benign crash** — the process silently ceases all operation; other
//!   processes cannot detect it.
//! * **Malicious crash** — the process performs a *finite* number of
//!   arbitrary steps (within its write capability) and then ceases all
//!   operation, undetectably.
//! * **Transient fault** — perturbs the state of the system for a finite
//!   time, leaving it in an arbitrary state (countered by stabilization).
//! * **Initially dead** — a special case of crash: the process never does
//!   anything.
//!
//! A [`FaultPlan`] schedules any mix of these against a run; the engine
//! executes the plan deterministically.

use std::fmt;

use crate::graph::ProcessId;

/// Liveness status of a process during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Health {
    /// Executing its program normally.
    Live,
    /// In the malicious pre-crash phase: will take `remaining` more
    /// arbitrary steps, then halt.
    Byzantine {
        /// Arbitrary steps left before the process halts.
        remaining: u32,
    },
    /// Halted (benign crash completed, malicious crash completed, or
    /// initially dead). Its variables remain readable by neighbors.
    Dead,
}

impl Health {
    /// Whether the process still takes steps (live or byzantine).
    #[inline]
    pub fn is_active(self) -> bool {
        !matches!(self, Health::Dead)
    }

    /// Whether the process executes its *program* (not arbitrary steps).
    #[inline]
    pub fn is_live(self) -> bool {
        matches!(self, Health::Live)
    }

    /// Whether the process has halted.
    #[inline]
    pub fn is_dead(self) -> bool {
        matches!(self, Health::Dead)
    }
}

/// How a restarted process re-seeds its local state.
///
/// Stabilization makes every variant sound: the algorithm converges to the
/// invariant `I` from *any* state, so a resurrected process — whatever it
/// wakes up with — is re-absorbed with disturbance bounded by the failure
/// locality. The variants differ only in how long re-absorption takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resurrection {
    /// Restart from the algorithm's legitimate initial local state
    /// (a clean reboot with no persisted state).
    Fresh,
    /// Restart from a checkpoint of the process's own local state captured
    /// `age` steps *before the restart fires* (a warm reboot from a
    /// possibly-stale snapshot; `age = 0` resumes the state at death).
    Snapshot {
        /// Staleness of the restored checkpoint, in engine steps.
        age: u64,
    },
    /// Restart with fully arbitrary local state drawn from a dedicated
    /// RNG stream keyed by `seed` (the worst case stabilization covers).
    Arbitrary {
        /// Seed of the corruption stream, independent of the run seed.
        seed: u64,
    },
}

impl fmt::Display for Resurrection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resurrection::Fresh => write!(f, "fresh"),
            Resurrection::Snapshot { age } => write!(f, "snapshot:{age}"),
            Resurrection::Arbitrary { seed } => write!(f, "arbitrary:{seed}"),
        }
    }
}

/// The kind of an injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Benign crash: the target halts immediately.
    Crash,
    /// Malicious crash: the target takes `steps` arbitrary steps
    /// (scheduled fairly among normal activity), then halts.
    MaliciousCrash {
        /// Number of arbitrary steps before halting.
        steps: u32,
    },
    /// Transient fault corrupting *every* variable in the system
    /// (the canonical stabilization challenge).
    TransientGlobal,
    /// Transient fault corrupting only the target process's local state.
    TransientLocal,
    /// Recovery event: re-enable a dead target, re-seeding its local
    /// state per [`Resurrection`]. A no-op unless the target is dead —
    /// restarting an active process must not disturb it.
    Restart {
        /// How the resurrected process's state is re-seeded.
        state: Resurrection,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::MaliciousCrash { steps } => write!(f, "malicious-crash({steps})"),
            FaultKind::TransientGlobal => write!(f, "transient-global"),
            FaultKind::TransientLocal => write!(f, "transient-local"),
            FaultKind::Restart { state } => write!(f, "restart({state})"),
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Engine step at which the fault strikes (before any action fires
    /// at that step).
    pub at_step: u64,
    /// Target process; ignored for [`FaultKind::TransientGlobal`].
    pub target: ProcessId,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one run.
///
/// # Examples
///
/// ```
/// use diners_sim::fault::FaultPlan;
/// let plan = FaultPlan::new()
///     .initially_dead(3)
///     .crash(100, 0)
///     .malicious_crash(250, 1, 16)
///     .transient_global(500);
/// assert_eq!(plan.events().len(), 3);
/// assert_eq!(plan.initially_dead_processes(), &[3.into()]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    initially_dead: Vec<ProcessId>,
    /// Corrupt the entire initial state before step 0 (equivalent to a
    /// transient fault in the distant past — the stabilization start).
    random_initial_state: bool,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Alias for [`FaultPlan::new`], reads better at call sites.
    pub fn none() -> Self {
        Self::default()
    }

    /// Mark a process dead from the very beginning.
    #[must_use]
    pub fn initially_dead(mut self, pid: impl Into<ProcessId>) -> Self {
        let pid = pid.into();
        if !self.initially_dead.contains(&pid) {
            self.initially_dead.push(pid);
            self.initially_dead.sort_unstable();
        }
        self
    }

    /// Schedule a benign crash.
    #[must_use]
    pub fn crash(mut self, at_step: u64, pid: impl Into<ProcessId>) -> Self {
        self.events.push(FaultEvent {
            at_step,
            target: pid.into(),
            kind: FaultKind::Crash,
        });
        self.normalize();
        self
    }

    /// Schedule a malicious crash: `steps` arbitrary steps, then halt.
    #[must_use]
    pub fn malicious_crash(mut self, at_step: u64, pid: impl Into<ProcessId>, steps: u32) -> Self {
        self.events.push(FaultEvent {
            at_step,
            target: pid.into(),
            kind: FaultKind::MaliciousCrash { steps },
        });
        self.normalize();
        self
    }

    /// Schedule a global transient fault (corrupts every variable).
    #[must_use]
    pub fn transient_global(mut self, at_step: u64) -> Self {
        self.events.push(FaultEvent {
            at_step,
            target: ProcessId(0),
            kind: FaultKind::TransientGlobal,
        });
        self.normalize();
        self
    }

    /// Schedule a local transient fault at one process.
    #[must_use]
    pub fn transient_local(mut self, at_step: u64, pid: impl Into<ProcessId>) -> Self {
        self.events.push(FaultEvent {
            at_step,
            target: pid.into(),
            kind: FaultKind::TransientLocal,
        });
        self.normalize();
        self
    }

    /// Schedule a restart: if the target is dead at `at_step`, re-enable
    /// it with its local state re-seeded per `state`.
    #[must_use]
    pub fn restart(mut self, at_step: u64, pid: impl Into<ProcessId>, state: Resurrection) -> Self {
        self.events.push(FaultEvent {
            at_step,
            target: pid.into(),
            kind: FaultKind::Restart { state },
        });
        self.normalize();
        self
    }

    /// Schedule a restart from the legitimate initial local state.
    #[must_use]
    pub fn restart_fresh(self, at_step: u64, pid: impl Into<ProcessId>) -> Self {
        self.restart(at_step, pid, Resurrection::Fresh)
    }

    /// Schedule a restart from a checkpoint `age` steps old.
    #[must_use]
    pub fn restart_snapshot(self, at_step: u64, pid: impl Into<ProcessId>, age: u64) -> Self {
        self.restart(at_step, pid, Resurrection::Snapshot { age })
    }

    /// Schedule a restart with arbitrary local state drawn from `seed`.
    #[must_use]
    pub fn restart_arbitrary(self, at_step: u64, pid: impl Into<ProcessId>, seed: u64) -> Self {
        self.restart(at_step, pid, Resurrection::Arbitrary { seed })
    }

    /// Rebuild a plan from raw events (the shrinker's path: drop or
    /// weaken events from an existing plan and re-run). Events are
    /// re-normalized into the same deterministic firing order the
    /// builders produce, so a plan round-trips through
    /// [`FaultPlan::events`] unchanged.
    pub fn from_events(events: impl IntoIterator<Item = FaultEvent>) -> Self {
        let mut plan = FaultPlan {
            events: events.into_iter().collect(),
            ..FaultPlan::default()
        };
        plan.normalize();
        plan
    }

    /// Start the run from a fully arbitrary state (the canonical
    /// stabilization experiment). The corruption is drawn from the
    /// engine's seeded RNG.
    #[must_use]
    pub fn from_arbitrary_state(mut self) -> Self {
        self.random_initial_state = true;
        self
    }

    /// Whether the initial state should be randomized.
    pub fn starts_arbitrary(&self) -> bool {
        self.random_initial_state
    }

    /// All scheduled events, sorted by step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Processes dead from step 0.
    pub fn initially_dead_processes(&self) -> &[ProcessId] {
        &self.initially_dead
    }

    /// Events striking exactly at `step`.
    pub fn due_at(&self, step: u64) -> impl Iterator<Item = &FaultEvent> + '_ {
        // events are sorted by step; a linear scan is fine at our scales.
        self.events.iter().filter(move |e| e.at_step == step)
    }

    /// Allocation-free cursor variant of [`FaultPlan::due_at`] for callers
    /// that visit steps in nondecreasing order (the engine hot path).
    ///
    /// Given a cursor into [`FaultPlan::events`] (initially `0`), returns
    /// the half-open index range of events striking exactly at `step`,
    /// skipping any already-passed events before it. Feed the returned
    /// `end` back as the next call's cursor; in the common no-fault case
    /// this is two comparisons and no allocation.
    pub fn due_span(&self, cursor: usize, step: u64) -> (usize, usize) {
        let mut start = cursor;
        while start < self.events.len() && self.events[start].at_step < step {
            start += 1;
        }
        let mut end = start;
        while end < self.events.len() && self.events[end].at_step == step {
            end += 1;
        }
        (start, end)
    }

    /// Total number of processes this plan ever kills (initially dead +
    /// crash + malicious crash targets, deduplicated).
    pub fn kill_count(&self) -> usize {
        let mut victims: Vec<ProcessId> = self.initially_dead.clone();
        for e in &self.events {
            if matches!(e.kind, FaultKind::Crash | FaultKind::MaliciousCrash { .. }) {
                victims.push(e.target);
            }
        }
        victims.sort_unstable();
        victims.dedup();
        victims.len()
    }

    /// Number of scheduled restart events.
    pub fn restart_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Restart { .. }))
            .count()
    }

    fn normalize(&mut self) {
        self.events
            .sort_by_key(|e| (e.at_step, e.target, kind_rank(e.kind)));
    }
}

fn kind_rank(k: FaultKind) -> u8 {
    match k {
        FaultKind::TransientGlobal => 0,
        FaultKind::TransientLocal => 1,
        FaultKind::MaliciousCrash { .. } => 2,
        FaultKind::Crash => 3,
        // Restarts sort after kills at the same step, so a same-step
        // crash→restart pair nets out to an immediate resurrection.
        FaultKind::Restart { .. } => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_predicates() {
        assert!(Health::Live.is_active());
        assert!(Health::Live.is_live());
        assert!(!Health::Live.is_dead());
        assert!(Health::Byzantine { remaining: 2 }.is_active());
        assert!(!Health::Byzantine { remaining: 2 }.is_live());
        assert!(Health::Dead.is_dead());
        assert!(!Health::Dead.is_active());
    }

    #[test]
    fn plan_sorts_events_by_step() {
        let p = FaultPlan::new()
            .crash(50, 1)
            .crash(10, 2)
            .transient_global(30);
        let steps: Vec<u64> = p.events().iter().map(|e| e.at_step).collect();
        assert_eq!(steps, vec![10, 30, 50]);
    }

    /// A plan round-trips through `events()` → `from_events` unchanged
    /// (the shrinker's drop/weaken path), including re-normalizing
    /// unsorted input into the builders' firing order.
    #[test]
    fn from_events_round_trips_and_renormalizes() {
        let plan = FaultPlan::new()
            .crash(50, 1)
            .malicious_crash(10, 2, 4)
            .transient_global(30)
            .restart_fresh(70, 1);
        let rebuilt = FaultPlan::from_events(plan.events().iter().cloned());
        assert_eq!(rebuilt.events(), plan.events());

        // Unsorted raw events are normalized to the same firing order.
        let mut shuffled: Vec<FaultEvent> = plan.events().to_vec();
        shuffled.reverse();
        let renorm = FaultPlan::from_events(shuffled);
        assert_eq!(renorm.events(), plan.events());

        // Dropping an event (the shrinker's ddmin step) keeps the rest.
        let dropped: Vec<FaultEvent> = plan
            .events()
            .iter()
            .filter(|e| e.at_step != 30)
            .cloned()
            .collect();
        let smaller = FaultPlan::from_events(dropped);
        assert_eq!(smaller.events().len(), plan.events().len() - 1);
        assert!(smaller.events().iter().all(|e| e.at_step != 30));
    }

    #[test]
    fn due_at_filters() {
        let p = FaultPlan::new().crash(10, 1).crash(10, 2).crash(20, 3);
        assert_eq!(p.due_at(10).count(), 2);
        assert_eq!(p.due_at(15).count(), 0);
        assert_eq!(p.due_at(20).count(), 1);
    }

    #[test]
    fn due_span_matches_due_at_under_a_monotone_cursor() {
        let p = FaultPlan::new()
            .crash(10, 1)
            .crash(10, 2)
            .transient_global(12)
            .crash(20, 3);
        let mut cursor = 0;
        for step in 0..25u64 {
            let (start, end) = p.due_span(cursor, step);
            cursor = end;
            let via_span: Vec<_> = p.events()[start..end].to_vec();
            let via_filter: Vec<_> = p.due_at(step).copied().collect();
            assert_eq!(via_span, via_filter, "step {step}");
        }
        // Cursor past the end stays in range and yields nothing.
        assert_eq!(p.due_span(cursor, 99), (p.events().len(), p.events().len()));
    }

    #[test]
    fn due_span_skips_missed_steps() {
        let p = FaultPlan::new().crash(5, 0).crash(9, 1);
        // Jumping straight to step 9 passes over the step-5 event.
        assert_eq!(p.due_span(0, 9), (1, 2));
    }

    #[test]
    fn initially_dead_dedups_and_sorts() {
        let p = FaultPlan::new()
            .initially_dead(4)
            .initially_dead(1)
            .initially_dead(4);
        assert_eq!(p.initially_dead_processes(), &[ProcessId(1), ProcessId(4)]);
    }

    #[test]
    fn kill_count_dedups_across_kinds() {
        let p = FaultPlan::new()
            .initially_dead(0)
            .crash(5, 1)
            .malicious_crash(9, 1, 4)
            .transient_global(3);
        assert_eq!(p.kill_count(), 2);
    }

    #[test]
    fn arbitrary_start_flag() {
        assert!(!FaultPlan::none().starts_arbitrary());
        assert!(FaultPlan::new().from_arbitrary_state().starts_arbitrary());
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Crash.to_string(), "crash");
        assert_eq!(
            FaultKind::MaliciousCrash { steps: 7 }.to_string(),
            "malicious-crash(7)"
        );
        assert_eq!(FaultKind::TransientGlobal.to_string(), "transient-global");
        assert_eq!(
            FaultKind::Restart {
                state: Resurrection::Fresh
            }
            .to_string(),
            "restart(fresh)"
        );
        assert_eq!(
            FaultKind::Restart {
                state: Resurrection::Snapshot { age: 32 }
            }
            .to_string(),
            "restart(snapshot:32)"
        );
        assert_eq!(
            FaultKind::Restart {
                state: Resurrection::Arbitrary { seed: 9 }
            }
            .to_string(),
            "restart(arbitrary:9)"
        );
    }

    #[test]
    fn restart_builders_and_count() {
        let p = FaultPlan::new()
            .crash(10, 1)
            .restart_fresh(20, 1)
            .restart_snapshot(30, 1, 8)
            .restart_arbitrary(40, 1, 7);
        assert_eq!(p.restart_count(), 3);
        // Restarts do not count as kills.
        assert_eq!(p.kill_count(), 1);
        assert_eq!(
            p.events()[1].kind,
            FaultKind::Restart {
                state: Resurrection::Fresh
            }
        );
    }

    #[test]
    fn same_step_crash_restart_orders_kill_first() {
        let p = FaultPlan::new().restart_fresh(10, 1).crash(10, 1);
        assert_eq!(p.events()[0].kind, FaultKind::Crash);
        assert!(matches!(p.events()[1].kind, FaultKind::Restart { .. }));
    }
}
