//! Guarded-command shared-memory simulation substrate for the
//! malicious-crash dining-philosophers reproduction.
//!
//! This crate implements the computation model of Nesterenko & Arora,
//! *Dining Philosophers that Tolerate Malicious Crashes* (ICDCS 2002),
//! §2: processes joined by a symmetric neighbor relation, guarded-command
//! actions over local and shared edge variables, weakly fair serial
//! execution, and the paper's fault taxonomy (benign crash, malicious
//! crash, transient fault, initially-dead processes).
//!
//! The paper's algorithm itself lives in the `diners-core` crate; this
//! crate is algorithm-agnostic and is also used by the baseline and
//! message-passing crates.
//!
//! # Quick tour
//!
//! * [`graph::Topology`] — the conflict graph, with distances and the
//!   diameter constant `D`.
//! * [`algorithm::Algorithm`] / [`algorithm::DinerAlgorithm`] — a
//!   guarded-command program: action kinds, guards over a neighborhood
//!   [`algorithm::View`], commands as atomic [`algorithm::Write`] sets.
//! * [`scheduler`] — weakly fair daemons: round-robin, least-recent,
//!   random, bounded-adversarial, scripted.
//! * [`fault::FaultPlan`] — deterministic fault schedules, including the
//!   paper's malicious crash (k arbitrary steps, then halt).
//! * [`engine::Engine`] — deterministic interleaving execution with
//!   service metrics and an exclusion monitor.
//! * [`predicate`] — named global predicates and convergence detection.
//!
//! # Example
//!
//! ```
//! use diners_sim::engine::Engine;
//! use diners_sim::fault::FaultPlan;
//! use diners_sim::graph::Topology;
//! use diners_sim::scheduler::RandomScheduler;
//! use diners_sim::toy::ToyDiners;
//!
//! let mut engine = Engine::builder(ToyDiners, Topology::ring(8))
//!     .scheduler(RandomScheduler::new(42))
//!     .faults(FaultPlan::new().crash(500, 3))
//!     .seed(42)
//!     .build();
//! engine.run(5_000);
//! assert_eq!(engine.metrics().violation_step_count(), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod codec;
pub mod engine;
pub mod explore;
pub mod expose;
pub mod fault;
pub mod fingerprint;
pub mod footprint;
pub mod graph;
pub mod liveness;
pub mod metrics;
pub mod predicate;
pub mod record;
pub mod rng;
pub mod scheduler;
pub mod shrink;
pub mod symmetry;
pub mod sync;
pub mod table;
pub mod telemetry;
pub mod toy;
pub mod trace;
pub mod tracing;
pub mod workload;

pub use algorithm::{
    ActionId, ActionKind, Algorithm, DinerAlgorithm, Move, Phase, SystemState, View, Write,
};
pub use codec::{Codec, StateCodec};
pub use engine::{Engine, EnumerationMode, RunSummary, StepOutcome};
pub use explore::{ExploreConfig, Reduction};
pub use expose::MetricsServer;
pub use fault::{FaultKind, FaultPlan, Health, Resurrection};
pub use footprint::{analyze, AnalysisConfig, ContractReport, IndependenceMatrix};
pub use graph::{EdgeId, Family, ProcessId, Topology};
pub use liveness::{check_liveness, check_liveness_multi, Lasso, LivenessConfig, LivenessReport};
pub use predicate::{Snapshot, StatePredicate};
pub use record::{
    state_digest, Checkpoint, FlightRecorder, RecordedFault, Recording, ReplayScheduler, Replayer,
    StepDecision,
};
pub use scheduler::Scheduler;
pub use symmetry::{Perm, SymmetryGroup};
pub use telemetry::{
    AlertKind, Deviation, EventSink, Histogram, JsonlSink, MetricsRegistry, NetOp, RingSink,
    Telemetry, TelemetryEvent, TelemetryKind,
};
pub use tracing::{BlameChain, CausalTracer, Span, SpanId, SpanKind};
pub use workload::Workload;
