//! A dependency-free `/metrics` exposition endpoint.
//!
//! [`MetricsServer`] binds a plain `std::net::TcpListener` and serves
//! the most recently published Prometheus text rendering (see
//! [`crate::telemetry::MetricsRegistry::to_prometheus`]) to any HTTP
//! GET. The server never touches the registry itself: callers render
//! and [`MetricsServer::publish`] at whatever cadence suits them, so a
//! simulation's hot loop decides exactly when the (cheap) snapshot
//! happens and the serving thread only ever copies a string.
//!
//! The accept loop runs on one background thread in non-blocking mode
//! with a short poll sleep — crude, but dependency-free and more than
//! adequate for a scrape endpoint. Bind failures (sandboxes without
//! network access) surface as `io::Error` so callers can degrade to
//! file output.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::telemetry::MetricsRegistry;

/// A minimal HTTP server exposing one text document at every path.
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving an empty document.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let body = Arc::new(Mutex::new(String::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let (b, s) = (Arc::clone(&body), Arc::clone(&stop));
        let handle = thread::spawn(move || serve(listener, b, s));
        Ok(MetricsServer {
            addr,
            body,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publish the registry's current Prometheus rendering.
    pub fn publish(&self, registry: &MetricsRegistry) {
        self.publish_text(registry.to_prometheus());
    }

    /// Publish an arbitrary text document.
    pub fn publish_text(&self, text: String) {
        *self.body.lock().unwrap() = text;
    }

    /// Stop the accept loop and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(listener: TcpListener, body: Arc<Mutex<String>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut conn, _)) => {
                // Best-effort: drain whatever request bytes are ready,
                // then answer. A scrape endpoint needs no routing.
                let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let text = body.lock().unwrap().clone();
                let response = format!(
                    "HTTP/1.1 200 OK\r\ncontent-type: text/plain; version=0.0.4\r\n\
                     content-length: {}\r\nconnection: close\r\n\r\n{}",
                    text.len(),
                    text
                );
                let _ = conn.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn serves_published_metrics_over_http() {
        // Sandboxes may forbid binding sockets; that is a skip, not a
        // failure — the renderer itself is covered in telemetry tests.
        let Ok(server) = MetricsServer::bind("127.0.0.1:0") else {
            eprintln!("skipping: cannot bind a loopback socket here");
            return;
        };
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("monitor.cuts");
        reg.add(c, 7);
        server.publish(&reg);

        let mut conn = TcpStream::connect(server.addr()).expect("connect to own server");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("monitor_cuts 7"), "{response}");

        // Re-publish: the next scrape sees the new value.
        reg.add(c, 1);
        server.publish(&reg);
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.contains("monitor_cuts 8"), "{response}");
        server.shutdown();
    }
}
