//! Exhaustive state-space exploration (bounded model checking).
//!
//! For small systems the guarded-command model is finite enough to
//! enumerate *every* reachable state under *every* daemon — a much
//! stronger check than any sampled schedule: a safety property verified
//! here holds for all weakly fair computations (and all unfair ones).
//!
//! [`explore`] runs a BFS over global states from a given initial state,
//! following every enabled move of every live process, checking a safety
//! predicate in each state and reporting deadlocks (states with no
//! enabled move). The search is bounded by [`Limits::max_states`]; the
//! report says whether it was truncated, so "verified" is only claimed
//! for complete searches.
//!
//! The workload must be state-independent for the state space to be
//! well-defined: each process either always or never "needs" to eat
//! (the per-process `needs` mask).

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use crate::algorithm::{Algorithm, Move, SystemState, View, Write};
use crate::fault::Health;
use crate::graph::Topology;
use crate::predicate::Snapshot;

/// Exploration bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Stop after visiting this many distinct states.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 200_000,
        }
    }
}

/// Result of an exhaustive search.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions (state, move) explored.
    pub transitions: u64,
    /// Number of distinct deadlock states (no move enabled anywhere).
    pub deadlocks: usize,
    /// The move sequence to the first property violation, if any.
    pub violation: Option<Vec<Move>>,
    /// Whether the search hit [`Limits::max_states`] before completing.
    pub truncated: bool,
}

impl ExplorationReport {
    /// Whether the property was verified over the *complete* reachable
    /// state space.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// Exhaustively explore the reachable state space of `alg` on `topo`
/// from `initial` with the given health vector and per-process `needs`
/// mask, checking `safety` in every reachable state.
///
/// # Panics
///
/// Panics if `needs` or `health` length differs from the topology size.
pub fn explore<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
) -> ExplorationReport
where
    A: Algorithm,
    A::Local: Hash + Eq,
    A::Edge: Hash + Eq,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    assert_eq!(needs.len(), topo.len(), "needs mask size mismatch");
    assert_eq!(health.len(), topo.len(), "health vector size mismatch");

    let mut report = ExplorationReport {
        states: 0,
        transitions: 0,
        deadlocks: 0,
        violation: None,
        truncated: false,
    };

    // Map state -> (parent index, move from parent) for trace rebuild.
    let mut ids: HashMap<StateKey<A>, usize> = HashMap::new();
    let mut parents: Vec<Option<(usize, Move)>> = Vec::new();
    let mut states: Vec<SystemState<A>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let check = |state: &SystemState<A>| -> bool {
        let snap = Snapshot::new(topo, state, health);
        safety(&snap)
    };

    if !check(&initial) {
        report.states = 1;
        report.violation = Some(Vec::new());
        return report;
    }
    ids.insert(StateKey::of(&initial), 0);
    parents.push(None);
    states.push(initial);
    queue.push_back(0);

    while let Some(idx) = queue.pop_front() {
        let moves = enabled_moves(alg, topo, &states[idx], health, needs);
        if moves.is_empty() {
            report.deadlocks += 1;
            continue;
        }
        for mv in moves {
            report.transitions += 1;
            let next = apply(alg, topo, &states[idx], mv, needs);
            let key = StateKey::of(&next);
            if ids.contains_key(&key) {
                continue;
            }
            let ok = check(&next);
            let next_idx = states.len();
            ids.insert(key, next_idx);
            parents.push(Some((idx, mv)));
            states.push(next);
            if !ok {
                report.states = states.len();
                report.violation = Some(rebuild_trace(&parents, next_idx));
                return report;
            }
            if states.len() >= limits.max_states {
                report.states = states.len();
                report.truncated = true;
                return report;
            }
            queue.push_back(next_idx);
        }
    }

    report.states = states.len();
    report
}

fn enabled_moves<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    state: &SystemState<A>,
    health: &[Health],
    needs: &[bool],
) -> Vec<Move> {
    let mut moves = Vec::new();
    for p in topo.processes() {
        if !health[p.index()].is_live() {
            continue;
        }
        let view = View::new(topo, state, p, needs[p.index()]);
        for (ki, kind) in alg.kinds().iter().enumerate() {
            if kind.per_neighbor {
                for slot in 0..topo.degree(p) {
                    let a = crate::algorithm::ActionId::at_slot(ki, slot);
                    if alg.enabled(&view, a) {
                        moves.push(Move { pid: p, action: a });
                    }
                }
            } else {
                let a = crate::algorithm::ActionId::global(ki);
                if alg.enabled(&view, a) {
                    moves.push(Move { pid: p, action: a });
                }
            }
        }
    }
    moves
}

fn apply<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    state: &SystemState<A>,
    mv: Move,
    needs: &[bool],
) -> SystemState<A> {
    let mut next = state.clone();
    let writes: Vec<Write<A>> = {
        let view = View::new(topo, state, mv.pid, needs[mv.pid.index()]);
        alg.execute(&view, mv.action)
    };
    for w in writes {
        match w {
            Write::Local(l) => *next.local_mut(mv.pid) = l,
            Write::Edge { neighbor, value } => {
                let e = topo
                    .edge_between(mv.pid, neighbor)
                    .expect("edge write to neighbor");
                *next.edge_mut(e) = value;
            }
        }
    }
    next
}

fn rebuild_trace(parents: &[Option<(usize, Move)>], mut idx: usize) -> Vec<Move> {
    let mut trace = Vec::new();
    while let Some((parent, mv)) = parents[idx] {
        trace.push(mv);
        idx = parent;
    }
    trace.reverse();
    trace
}

/// Hashable snapshot of a full system state.
struct StateKey<A: Algorithm> {
    locals: Vec<A::Local>,
    edges: Vec<A::Edge>,
}

impl<A: Algorithm> StateKey<A>
where
    A::Local: Clone,
    A::Edge: Clone,
{
    fn of(state: &SystemState<A>) -> Self {
        StateKey {
            locals: state.locals().to_vec(),
            edges: state.edges().to_vec(),
        }
    }
}

impl<A: Algorithm> PartialEq for StateKey<A>
where
    A::Local: Eq,
    A::Edge: Eq,
{
    fn eq(&self, other: &Self) -> bool {
        self.locals == other.locals && self.edges == other.edges
    }
}

impl<A: Algorithm> Eq for StateKey<A>
where
    A::Local: Eq,
    A::Edge: Eq,
{
}

impl<A: Algorithm> Hash for StateKey<A>
where
    A::Local: Hash,
    A::Edge: Hash,
{
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.locals.hash(state);
        self.edges.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Phase;
    use crate::graph::ProcessId;
    use crate::graph::Topology;
    use crate::toy::ToyDiners;

    fn live(n: usize) -> Vec<Health> {
        vec![Health::Live; n]
    }

    fn exclusion(snap: &Snapshot<'_, ToyDiners>) -> bool {
        snap.topo.edges().iter().all(|&(a, b)| {
            !(*snap.state.local(a) == Phase::Eating && *snap.state.local(b) == Phase::Eating)
        })
    }

    #[test]
    fn toy_diners_exclusion_verified_on_a_line() {
        let topo = Topology::line(3);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(3),
            &[true; 3],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified(), "{report:?}");
        assert_eq!(report.deadlocks, 0);
        // 3 processes x 3 phases = up to 27 states; all reachable except
        // those with adjacent eaters.
        assert!(report.states <= 27, "{}", report.states);
        assert!(report.transitions > 0);
    }

    #[test]
    fn toy_diners_exclusion_verified_on_a_ring() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn violation_is_found_and_traced_from_a_bad_start() {
        // Start with two adjacent eaters: the initial state itself
        // violates exclusion.
        let topo = Topology::line(2);
        let mut initial = SystemState::initial(&ToyDiners, &topo);
        *initial.local_mut(ProcessId(0)) = Phase::Eating;
        *initial.local_mut(ProcessId(1)) = Phase::Eating;
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(2),
            &[true; 2],
            exclusion,
            Limits::default(),
        );
        assert!(!report.verified());
        assert_eq!(report.violation, Some(Vec::new()), "violated at depth 0");
    }

    #[test]
    fn sated_system_deadlocks_quietly() {
        // Nobody needs to eat: the all-thinking state has no enabled
        // move; it is the single (expected) "deadlock".
        let topo = Topology::line(2);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(2),
            &[false; 2],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified());
        assert_eq!(report.states, 1);
        assert_eq!(report.deadlocks, 1);
    }

    #[test]
    fn truncation_is_reported() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits { max_states: 3 },
        );
        assert!(report.truncated);
        assert!(!report.verified());
    }

    #[test]
    fn dead_process_takes_no_moves() {
        let topo = Topology::line(2);
        let mut initial = SystemState::initial(&ToyDiners, &topo);
        *initial.local_mut(ProcessId(0)) = Phase::Eating; // dead while eating
        let mut health = live(2);
        health[0] = Health::Dead;
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &health,
            &[true; 2],
            exclusion,
            Limits::default(),
        );
        // p1 can only join (enter blocked by the dead eater): states are
        // {E,T}, {E,H}.
        assert!(report.verified(), "{report:?}");
        assert_eq!(report.states, 2);
    }
}
