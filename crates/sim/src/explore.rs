//! Exhaustive state-space exploration (bounded model checking).
//!
//! For small systems the guarded-command model is finite enough to
//! enumerate *every* reachable state under *every* daemon — a much
//! stronger check than any sampled schedule: a safety property verified
//! here holds for all weakly fair computations (and all unfair ones).
//!
//! [`explore`] runs a BFS over global states from a given initial state,
//! following every enabled move of every live process, checking a safety
//! predicate in each state and reporting deadlocks (states with no
//! enabled move). The search is bounded by [`Limits::max_states`]; the
//! report says whether it was truncated, so "verified" is only claimed
//! for complete searches.
//!
//! # Performance architecture
//!
//! States are identified by a 64-bit [`crate::fingerprint`] instead of a
//! full cloned key; fingerprint collisions are resolved by comparing the
//! candidate against the states already interned in that fingerprint's
//! bucket, so deduplication is exact, not probabilistic.
//!
//! The visited set itself comes in three flavours ([`Reduction`]):
//!
//! * [`Reduction::None`] — the arena stores full cloned [`SystemState`]s
//!   (the historical baseline, kept for differential testing and for
//!   algorithms without a codec-friendly representation).
//! * [`Reduction::Packed`] (the default) — the arena is a flat `Vec<u64>`
//!   of fixed-stride bit-packed states ([`crate::codec`]); states are
//!   decoded only on collision compare, safety checks and trace rebuild.
//!   Discovery order and dedup decisions are representation-independent,
//!   so every report field except the memory accounting is identical to
//!   `None`'s.
//! * [`Reduction::Symmetry`] — additionally dedups by *canonical form*
//!   under the topology's automorphism subgroup ([`crate::symmetry`]),
//!   storing one representative per orbit. Sound only for equivariant
//!   algorithms ([`StateCodec::respects_symmetry`]) and symmetric safety
//!   predicates; non-equivariant algorithms silently degrade to the
//!   identity group (= `Packed` behaviour). Counterexample traces are
//!   *rehydrated* through the stored permutations, so the reported trace
//!   is a valid concrete trace of the original (unpermuted) system.
//!
//! The BFS is *layered*: the frontier at depth `d` is fully expanded
//! (moves enumerated, successors and fingerprints computed — the
//! expensive part), then merged sequentially in frontier order into the
//! visited set. Layering leaves the discovery order, transition counts,
//! deadlock counts, and early-exit points identical to the classic
//! FIFO-queue formulation, but makes the expansion embarrassingly
//! parallel: [`explore_parallel`] shards each frontier across scoped
//! worker threads and reassembles the per-shard results in shard order,
//! so its report is bit-identical to [`explore`]'s. Thread counts are
//! clamped to the host's available parallelism — on a single-core host
//! the sequential path is taken directly, with no spawn or chunk-merge
//! overhead.
//!
//! The workload must be state-independent for the state space to be
//! well-defined: each process either always or never "needs" to eat
//! (the per-process `needs` mask).

use std::hash::Hash;
use std::time::{Duration, Instant};

use crossbeam::{channel, thread};

use crate::algorithm::{Algorithm, Move, SystemState, View, Write};
use crate::codec::{Codec, StateCodec};
use crate::fault::Health;
use crate::fingerprint::{fingerprint, fingerprint_words, FingerprintMap};
use crate::graph::Topology;
use crate::predicate::Snapshot;
use crate::symmetry::{canonicalize_into, Perm, SymmetryGroup};

/// Exploration bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Stop after visiting this many distinct states.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 1_000_000,
        }
    }
}

/// How the visited set stores and deduplicates states. See the
/// [module docs](self) for the trade-offs and soundness conditions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Reduction {
    /// Full cloned states (baseline).
    None,
    /// Bit-packed states in a flat arena (default).
    #[default]
    Packed,
    /// Packed, plus orbit dedup under the topology's automorphism
    /// subgroup when the algorithm declares itself equivariant.
    Symmetry,
}

/// Full configuration for [`explore_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreConfig {
    /// Exploration bounds.
    pub limits: Limits,
    /// Visited-set representation.
    pub reduction: Reduction,
    /// Worker threads for frontier expansion: `0` = one per available
    /// core; values above the available parallelism are clamped down, so
    /// a single-core host always takes the sequential path.
    pub threads: usize,
}

/// Result of an exhaustive search.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// Distinct states visited (canonical representatives under
    /// [`Reduction::Symmetry`]).
    pub states: usize,
    /// Transitions (state, move) explored.
    pub transitions: u64,
    /// Number of distinct deadlock states (no move enabled anywhere).
    pub deadlocks: usize,
    /// The move sequence to the first property violation, if any. Always
    /// a valid concrete trace of the *original* system, even under
    /// symmetry reduction.
    pub violation: Option<Vec<Move>>,
    /// Whether the search hit [`Limits::max_states`] before completing.
    pub truncated: bool,
    /// Wall-clock time the search took.
    pub elapsed: Duration,
    /// Worker threads used to expand frontiers (1 = sequential), after
    /// clamping to the host's available parallelism.
    pub threads: usize,
    /// BFS layers expanded (frontier generations, excluding the empty
    /// final one).
    pub layers: usize,
    /// Largest frontier expanded in any layer.
    pub peak_frontier: usize,
    /// Successor states already interned when reached again (dedup
    /// rate = `dedup_hits / transitions`).
    pub dedup_hits: u64,
    /// Bytes held by the visited-set arena at termination: exact packed
    /// words under `Packed`/`Symmetry`, a per-state heap estimate under
    /// `None`.
    pub bytes_interned: usize,
    /// High-water mark of simultaneously materialized states: interned
    /// states plus the largest batch of successor candidates held during
    /// any layer merge.
    pub peak_states: usize,
}

impl ExplorationReport {
    /// Whether the property was verified over the *complete* reachable
    /// state space.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }

    /// Distinct states visited per second of wall-clock time (`0.0` when
    /// the search finished too fast to time — a sub-tick elapsed must not
    /// turn into an infinite or garbage rate).
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            let rate = self.states as f64 / secs;
            if rate.is_finite() {
                rate
            } else {
                0.0
            }
        } else {
            0.0
        }
    }

    /// Fraction of explored transitions that landed on an already-known
    /// state (`0.0` before any transition).
    pub fn dedup_rate(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.transitions as f64
        }
    }

    /// Average arena bytes per interned state (`0.0` before any state).
    pub fn bytes_per_state(&self) -> f64 {
        if self.states == 0 {
            0.0
        } else {
            self.bytes_interned as f64 / self.states as f64
        }
    }
}

fn empty_report(threads: usize) -> ExplorationReport {
    ExplorationReport {
        states: 0,
        transitions: 0,
        deadlocks: 0,
        violation: None,
        truncated: false,
        elapsed: Duration::ZERO,
        threads,
        layers: 0,
        peak_frontier: 0,
        dedup_hits: 0,
        bytes_interned: 0,
        peak_states: 0,
    }
}

/// The host's available parallelism (≥ 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a requested thread count: `0` means one per available core,
/// and anything above the available parallelism is clamped down (extra
/// threads on an oversubscribed host only add spawn and merge overhead —
/// the committed single-core benchmarks showed "parallel" runs *slower*
/// than sequential before this clamp).
fn resolve_threads(requested: usize) -> usize {
    let avail = available_parallelism();
    if requested == 0 {
        avail
    } else {
        requested.min(avail)
    }
}

/// Heap bytes one cloned state occupies in the `Reduction::None` arena
/// (struct + its two vectors' payloads; allocator slack not counted).
fn cloned_state_bytes<A: Algorithm>(topo: &Topology) -> usize {
    std::mem::size_of::<SystemState<A>>()
        + topo.len() * std::mem::size_of::<A::Local>()
        + topo.edge_count() * std::mem::size_of::<A::Edge>()
}

/// Exhaustively explore the reachable state space of `alg` on `topo`
/// from `initial` with the given health vector and per-process `needs`
/// mask, checking `safety` in every reachable state. Sequential, using
/// the default [`Reduction::Packed`] representation; see [`explore_with`]
/// for the full configuration surface.
///
/// # Panics
///
/// Panics if `needs` or `health` length differs from the topology size.
pub fn explore<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
) -> ExplorationReport
where
    A: StateCodec,
    A::Local: Hash + Eq,
    A::Edge: Hash + Eq,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    assert_eq!(needs.len(), topo.len(), "needs mask size mismatch");
    assert_eq!(health.len(), topo.len(), "health vector size mismatch");
    run_sequential(
        alg,
        topo,
        initial,
        health,
        needs,
        safety,
        Limits {
            max_states: limits.max_states,
        },
        Reduction::Packed,
    )
}

/// [`explore`] with frontier expansion sharded across `threads` scoped
/// worker threads (`0` = one per available core, more than available
/// clamped down). The report — discovery order, counts, violation trace,
/// truncation point — is bit-identical to the sequential search's; only
/// the wall-clock time changes.
///
/// # Panics
///
/// Panics if `needs` or `health` length differs from the topology size,
/// or if a worker thread panics.
#[allow(clippy::too_many_arguments)]
pub fn explore_parallel<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
    threads: usize,
) -> ExplorationReport
where
    A: StateCodec + Sync,
    A::Local: Hash + Eq + Send + Sync,
    A::Edge: Hash + Eq + Send + Sync,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    explore_with(
        alg,
        topo,
        initial,
        health,
        needs,
        safety,
        ExploreConfig {
            limits,
            reduction: Reduction::Packed,
            threads,
        },
    )
}

/// Fully configurable exploration: representation ([`Reduction`]),
/// bounds and thread count in one [`ExploreConfig`].
///
/// Under [`Reduction::Symmetry`] the caller asserts that the safety
/// predicate is *symmetric* (invariant under the topology's automorphism
/// group); the algorithm side of the soundness condition is checked via
/// [`StateCodec::respects_symmetry`] and degrades to no reduction when
/// absent.
///
/// # Panics
///
/// Panics if `needs` or `health` length differs from the topology size,
/// or if a worker thread panics.
pub fn explore_with<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    config: ExploreConfig,
) -> ExplorationReport
where
    A: StateCodec + Sync,
    A::Local: Hash + Eq + Send + Sync,
    A::Edge: Hash + Eq + Send + Sync,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    assert_eq!(needs.len(), topo.len(), "needs mask size mismatch");
    assert_eq!(health.len(), topo.len(), "health vector size mismatch");
    let threads = resolve_threads(config.threads);
    if threads <= 1 {
        return run_sequential(
            alg,
            topo,
            initial,
            health,
            needs,
            safety,
            config.limits,
            config.reduction,
        );
    }
    match config.reduction {
        Reduction::None => run_parallel_cloned(
            alg,
            topo,
            initial,
            health,
            needs,
            safety,
            config.limits,
            threads,
        ),
        Reduction::Packed | Reduction::Symmetry => {
            let codec = Codec::new(alg, topo);
            let group = effective_group(alg, topo, needs, health, config.reduction);
            run_parallel_packed(
                alg,
                &codec,
                &group,
                initial,
                health,
                needs,
                safety,
                config.limits,
                threads,
            )
        }
    }
}

/// The symmetry group actually used for a reduction mode: trivial unless
/// `Symmetry` was requested *and* the algorithm is equivariant, and then
/// only the stabilizer of the exploration context.
pub(crate) fn effective_group<A: StateCodec>(
    alg: &A,
    topo: &Topology,
    needs: &[bool],
    health: &[Health],
    reduction: Reduction,
) -> SymmetryGroup {
    match reduction {
        Reduction::Symmetry if alg.respects_symmetry() => {
            SymmetryGroup::for_topology(topo).stabilizing(needs, health)
        }
        _ => SymmetryGroup::identity(topo),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sequential<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
    reduction: Reduction,
) -> ExplorationReport
where
    A: StateCodec,
    A::Local: Hash + Eq,
    A::Edge: Hash + Eq,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    match reduction {
        Reduction::None => search_loop_cloned(
            topo,
            initial,
            health,
            safety,
            limits,
            1,
            |frontier, states| {
                frontier
                    .iter()
                    .map(|&i| expand_state(alg, topo, states, i, health, needs))
                    .collect()
            },
        ),
        Reduction::Packed | Reduction::Symmetry => {
            let codec = Codec::new(alg, topo);
            let group = effective_group(alg, topo, needs, health, reduction);
            let template = initial.clone();
            let mut expander = PackedExpander::new(alg, &codec, &group, health, needs, template);
            search_loop_packed(
                &codec,
                &group,
                initial,
                health,
                safety,
                limits,
                1,
                |frontier, arena| {
                    frontier
                        .iter()
                        .map(|&i| expander.expand(arena, i))
                        .collect()
                },
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_parallel_cloned<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
    threads: usize,
) -> ExplorationReport
where
    A: Algorithm + Sync,
    A::Local: Hash + Eq + Send + Sync,
    A::Edge: Hash + Eq + Send + Sync,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    search_loop_cloned(
        topo,
        initial,
        health,
        safety,
        limits,
        threads,
        |frontier, states| {
            // Tiny frontiers aren't worth the spawn cost; expand inline.
            // (Same results either way — only the wall-clock differs.)
            if frontier.len() < threads * 4 {
                return frontier
                    .iter()
                    .map(|&i| expand_state(alg, topo, states, i, health, needs))
                    .collect();
            }
            let chunk_size = frontier.len().div_ceil(threads);
            let nchunks = frontier.len().div_ceil(chunk_size);
            let (tx, rx) = channel::unbounded();
            let parts = thread::scope(|s| {
                for (ci, chunk) in frontier.chunks(chunk_size).enumerate() {
                    let tx = tx.clone();
                    s.spawn(move |_| {
                        let out: Vec<Expansion<A>> = chunk
                            .iter()
                            .map(|&i| expand_state(alg, topo, states, i, health, needs))
                            .collect();
                        // The receiver outlives the scope; send can't fail
                        // unless the merge side already panicked.
                        let _ = tx.send((ci, out));
                    });
                }
                drop(tx);
                let mut parts: Vec<Option<Vec<Expansion<A>>>> =
                    (0..nchunks).map(|_| None).collect();
                while let Ok((ci, out)) = rx.recv() {
                    parts[ci] = Some(out);
                }
                parts
            })
            .expect("explore worker panicked");
            // Reassemble in shard order: identical to sequential expansion.
            parts
                .into_iter()
                .flat_map(|p| p.expect("missing shard result"))
                .collect()
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn run_parallel_packed<A, F>(
    alg: &A,
    codec: &Codec<'_, A>,
    group: &SymmetryGroup,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
    threads: usize,
) -> ExplorationReport
where
    A: StateCodec + Sync,
    A::Local: Hash + Eq + Send + Sync,
    A::Edge: Hash + Eq + Send + Sync,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    let template = initial.clone();
    // Inline expander for frontiers too small to shard.
    let mut inline = PackedExpander::new(alg, codec, group, health, needs, template.clone());
    search_loop_packed(
        codec,
        group,
        initial,
        health,
        safety,
        limits,
        threads,
        |frontier, arena| {
            if frontier.len() < threads * 4 {
                return frontier.iter().map(|&i| inline.expand(arena, i)).collect();
            }
            let chunk_size = frontier.len().div_ceil(threads);
            let nchunks = frontier.len().div_ceil(chunk_size);
            let (tx, rx) = channel::unbounded();
            let template = &template;
            let parts = thread::scope(|s| {
                for (ci, chunk) in frontier.chunks(chunk_size).enumerate() {
                    let tx = tx.clone();
                    s.spawn(move |_| {
                        let mut expander =
                            PackedExpander::new(alg, codec, group, health, needs, template.clone());
                        let out: Vec<PackedExpansion> =
                            chunk.iter().map(|&i| expander.expand(arena, i)).collect();
                        let _ = tx.send((ci, out));
                    });
                }
                drop(tx);
                let mut parts: Vec<Option<Vec<PackedExpansion>>> =
                    (0..nchunks).map(|_| None).collect();
                while let Ok((ci, out)) = rx.recv() {
                    parts[ci] = Some(out);
                }
                parts
            })
            .expect("explore worker panicked");
            parts
                .into_iter()
                .flat_map(|p| p.expect("missing shard result"))
                .collect()
        },
    )
}

/// All successors of one frontier state: the enabled moves applied, with
/// each successor's fingerprint precomputed (in the worker, when
/// parallel). An empty `succs` marks a deadlock state.
struct Expansion<A: Algorithm> {
    parent: usize,
    succs: Vec<(Move, SystemState<A>, u64)>,
}

fn expand_state<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    states: &[SystemState<A>],
    idx: usize,
    health: &[Health],
    needs: &[bool],
) -> Expansion<A>
where
    A::Local: Hash,
    A::Edge: Hash,
{
    let state = &states[idx];
    let succs = enabled_moves(alg, topo, state, health, needs)
        .into_iter()
        .map(|mv| {
            let next = apply(alg, topo, state, mv, needs);
            let fp = fingerprint_state(&next);
            (mv, next, fp)
        })
        .collect();
    Expansion { parent: idx, succs }
}

/// Successors of one packed frontier state. `words` holds the packed
/// (and, under symmetry, canonicalized) successor windows back to back;
/// `moves[k]` pairs the raw move (in the canonical parent's frame) with
/// the successor's fingerprint and the index of the permutation that
/// canonicalized it. Plain `u64`/`Move` data — nothing algorithm-typed
/// crosses the thread boundary.
pub(crate) struct PackedExpansion {
    pub(crate) parent: usize,
    pub(crate) moves: Vec<(Move, u64, u32)>,
    pub(crate) words: Vec<u64>,
}

/// Reusable scratch for packed expansion: one decoded parent state, one
/// move buffer and three packed windows, reused across every state the
/// expander touches (per worker, when parallel).
pub(crate) struct PackedExpander<'a, A: StateCodec> {
    alg: &'a A,
    codec: &'a Codec<'a, A>,
    group: &'a SymmetryGroup,
    health: &'a [Health],
    needs: &'a [bool],
    state: SystemState<A>,
    moves_buf: Vec<Move>,
    succ: Vec<u64>,
    canon: Vec<u64>,
    scratch: Vec<u64>,
}

impl<'a, A: StateCodec> PackedExpander<'a, A> {
    pub(crate) fn new(
        alg: &'a A,
        codec: &'a Codec<'a, A>,
        group: &'a SymmetryGroup,
        health: &'a [Health],
        needs: &'a [bool],
        template: SystemState<A>,
    ) -> Self {
        let stride = codec.words();
        PackedExpander {
            alg,
            codec,
            group,
            health,
            needs,
            state: template,
            moves_buf: Vec::new(),
            succ: vec![0u64; stride],
            canon: vec![0u64; stride],
            scratch: vec![0u64; stride],
        }
    }

    pub(crate) fn expand(&mut self, arena: &[u64], idx: usize) -> PackedExpansion {
        let stride = self.codec.words();
        let topo = self.codec.topology();
        let window = &arena[idx * stride..(idx + 1) * stride];
        self.codec.decode_into(window, &mut self.state);
        let mut moves_buf = std::mem::take(&mut self.moves_buf);
        moves_buf.clear();
        enabled_moves_into(
            self.alg,
            topo,
            &self.state,
            self.health,
            self.needs,
            &mut moves_buf,
        );
        let mut out = PackedExpansion {
            parent: idx,
            moves: Vec::with_capacity(moves_buf.len()),
            words: Vec::with_capacity(moves_buf.len() * stride),
        };
        for &mv in &moves_buf {
            // Successor = parent words with the move's writes patched in —
            // no full re-encode.
            self.succ.copy_from_slice(window);
            let writes: Vec<Write<A>> = {
                let view = View::new(topo, &self.state, mv.pid, self.needs[mv.pid.index()]);
                self.alg.execute(&view, mv.action)
            };
            for w in writes {
                match w {
                    Write::Local(l) => self.codec.set_local(&mut self.succ, mv.pid, &l),
                    Write::Edge { neighbor, value } => {
                        let e = topo
                            .edge_between(mv.pid, neighbor)
                            .expect("edge write to neighbor");
                        self.codec.set_edge(&mut self.succ, e, &value);
                    }
                }
            }
            let (fp, pi) = if self.group.is_trivial() {
                (fingerprint_words(&self.succ), 0u32)
            } else {
                let pi = canonicalize_into(
                    self.codec,
                    self.group,
                    &self.succ,
                    &mut self.canon,
                    &mut self.scratch,
                );
                self.succ.copy_from_slice(&self.canon);
                (fingerprint_words(&self.succ), pi)
            };
            out.moves.push((mv, fp, pi));
            out.words.extend_from_slice(&self.succ);
        }
        self.moves_buf = moves_buf;
        out
    }
}

/// The layered BFS driver for the cloned-state (`Reduction::None`)
/// representation. `expand_layer` turns a frontier (indices into the
/// state arena) into one `Expansion` per frontier state, *in frontier
/// order*; the merge below is sequential either way, which is what makes
/// the sequential and parallel searches produce identical reports.
fn search_loop_cloned<A, F, E>(
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    safety: F,
    limits: Limits,
    threads: usize,
    mut expand_layer: E,
) -> ExplorationReport
where
    A: Algorithm,
    A::Local: Hash + Eq,
    A::Edge: Hash + Eq,
    F: Fn(&Snapshot<'_, A>) -> bool,
    E: FnMut(&[usize], &[SystemState<A>]) -> Vec<Expansion<A>>,
{
    let start = Instant::now();
    let mut report = empty_report(threads);
    let per_state = cloned_state_bytes::<A>(topo);

    let check = |state: &SystemState<A>| -> bool {
        let snap = Snapshot::new(topo, state, health);
        safety(&snap)
    };

    if !check(&initial) {
        report.states = 1;
        report.peak_states = 1;
        report.bytes_interned = per_state;
        report.violation = Some(Vec::new());
        report.elapsed = start.elapsed();
        return report;
    }

    let mut search = Search::new();
    let fp = fingerprint_state(&initial);
    search.intern(initial, fp, None);
    report.peak_states = 1;
    let mut frontier = vec![0usize];

    'bfs: while !frontier.is_empty() {
        // Per-layer stats run in the sequential merge, so the sequential
        // and parallel paths populate them identically.
        report.layers += 1;
        report.peak_frontier = report.peak_frontier.max(frontier.len());
        let expansions = expand_layer(&frontier, &search.states);
        let in_flight: usize = expansions.iter().map(|e| e.succs.len()).sum();
        report.peak_states = report.peak_states.max(search.states.len() + in_flight);
        let mut next_frontier = Vec::new();
        for exp in expansions {
            if exp.succs.is_empty() {
                report.deadlocks += 1;
                continue;
            }
            for (mv, next, fp) in exp.succs {
                report.transitions += 1;
                let (idx, is_new) = search.intern(next, fp, Some((exp.parent, mv)));
                if !is_new {
                    report.dedup_hits += 1;
                    continue;
                }
                if !check(&search.states[idx]) {
                    report.violation = Some(rebuild_trace(&search.parents, idx));
                    break 'bfs;
                }
                if search.states.len() >= limits.max_states {
                    report.truncated = true;
                    break 'bfs;
                }
                next_frontier.push(idx);
            }
        }
        frontier = next_frontier;
    }

    report.states = search.states.len();
    report.bytes_interned = search.states.len() * per_state;
    report.peak_states = report.peak_states.max(report.states);
    report.elapsed = start.elapsed();
    report
}

/// The layered BFS driver for the packed representations. Same merge
/// discipline as [`search_loop_cloned`]; the arena is a flat fixed-stride
/// `Vec<u64>` and states are only decoded for the safety check (and on
/// fingerprint collisions, inside `intern`'s window compare).
#[allow(clippy::too_many_arguments)]
fn search_loop_packed<A, F, E>(
    codec: &Codec<'_, A>,
    group: &SymmetryGroup,
    initial: SystemState<A>,
    health: &[Health],
    safety: F,
    limits: Limits,
    threads: usize,
    mut expand_layer: E,
) -> ExplorationReport
where
    A: StateCodec,
    F: Fn(&Snapshot<'_, A>) -> bool,
    E: FnMut(&[usize], &[u64]) -> Vec<PackedExpansion>,
{
    let topo = codec.topology();
    let start = Instant::now();
    let mut report = empty_report(threads);
    let stride = codec.words();

    let check = |state: &SystemState<A>| -> bool {
        let snap = Snapshot::new(topo, state, health);
        safety(&snap)
    };

    // The initial state is checked in its *original* frame, before any
    // canonicalization: a violation at depth 0 reports the empty trace of
    // the unpermuted system.
    if !check(&initial) {
        report.states = 1;
        report.peak_states = 1;
        report.bytes_interned = stride * 8;
        report.violation = Some(Vec::new());
        report.elapsed = start.elapsed();
        return report;
    }

    let mut search = PackedSearch::new(stride);
    let packed = codec.encode(&initial);
    let mut canon = vec![0u64; stride];
    let mut scratch = vec![0u64; stride];
    let root_perm = if group.is_trivial() {
        canon.copy_from_slice(&packed);
        0
    } else {
        canonicalize_into(codec, group, &packed, &mut canon, &mut scratch)
    };
    search.intern(&canon, fingerprint_words(&canon), None, root_perm);
    report.peak_states = 1;
    // `initial` is recycled as the decode scratch for safety checks.
    let mut check_state = initial;
    let mut frontier = vec![0usize];

    'bfs: while !frontier.is_empty() {
        report.layers += 1;
        report.peak_frontier = report.peak_frontier.max(frontier.len());
        let expansions = expand_layer(&frontier, &search.words);
        let in_flight: usize = expansions.iter().map(|e| e.moves.len()).sum();
        report.peak_states = report.peak_states.max(search.len() + in_flight);
        let mut next_frontier = Vec::new();
        for exp in expansions {
            if exp.moves.is_empty() {
                report.deadlocks += 1;
                continue;
            }
            for (k, &(mv, fp, pi)) in exp.moves.iter().enumerate() {
                report.transitions += 1;
                let cand = &exp.words[k * stride..(k + 1) * stride];
                let (idx, is_new) = search.intern(cand, fp, Some((exp.parent, mv)), pi);
                if !is_new {
                    report.dedup_hits += 1;
                    continue;
                }
                codec.decode_into(cand, &mut check_state);
                if !check(&check_state) {
                    report.violation = Some(rebuild_trace_packed(topo, group, &search, idx));
                    break 'bfs;
                }
                if search.len() >= limits.max_states {
                    report.truncated = true;
                    break 'bfs;
                }
                next_frontier.push(idx);
            }
        }
        frontier = next_frontier;
    }

    report.states = search.len();
    report.bytes_interned = search.words.len() * 8;
    report.peak_states = report.peak_states.max(report.states);
    report.elapsed = start.elapsed();
    report
}

/// The visited set for [`Reduction::None`]: a cloned-state arena plus a
/// fingerprint index into it.
struct Search<A: Algorithm> {
    /// fingerprint -> indices of interned states with that fingerprint.
    ids: FingerprintMap<Vec<usize>>,
    /// (parent index, move from parent) per state, for trace rebuild.
    parents: Vec<Option<(usize, Move)>>,
    states: Vec<SystemState<A>>,
}

impl<A: Algorithm> Search<A>
where
    A::Local: Eq,
    A::Edge: Eq,
{
    fn new() -> Self {
        Search {
            ids: FingerprintMap::default(),
            parents: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Intern `next` under fingerprint `fp`: returns its arena index and
    /// whether it was new. Collisions are resolved exactly, by comparing
    /// against every state already in the fingerprint's bucket.
    fn intern(
        &mut self,
        next: SystemState<A>,
        fp: u64,
        parent: Option<(usize, Move)>,
    ) -> (usize, bool) {
        let bucket = self.ids.entry(fp).or_default();
        for &i in bucket.iter() {
            let s = &self.states[i];
            if s.locals() == next.locals() && s.edges() == next.edges() {
                return (i, false);
            }
        }
        let idx = self.states.len();
        bucket.push(idx);
        self.parents.push(parent);
        self.states.push(next);
        (idx, true)
    }
}

/// The visited set for the packed representations: a flat fixed-stride
/// word arena plus a fingerprint index, parent links and (under
/// symmetry) the permutation that canonicalized each state.
pub(crate) struct PackedSearch {
    pub(crate) stride: usize,
    pub(crate) ids: FingerprintMap<Vec<usize>>,
    pub(crate) parents: Vec<Option<(usize, Move)>>,
    /// Index (into the group's perms) of π with `stored = π · raw`.
    pub(crate) perms: Vec<u32>,
    pub(crate) words: Vec<u64>,
}

impl PackedSearch {
    pub(crate) fn new(stride: usize) -> Self {
        PackedSearch {
            stride,
            ids: FingerprintMap::default(),
            parents: Vec::new(),
            perms: Vec::new(),
            words: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.parents.len()
    }

    /// Intern a packed window: exact dedup by word-for-word compare
    /// within the fingerprint's bucket.
    pub(crate) fn intern(
        &mut self,
        cand: &[u64],
        fp: u64,
        parent: Option<(usize, Move)>,
        perm: u32,
    ) -> (usize, bool) {
        debug_assert_eq!(cand.len(), self.stride);
        let bucket = self.ids.entry(fp).or_default();
        for &i in bucket.iter() {
            if &self.words[i * self.stride..(i + 1) * self.stride] == cand {
                return (i, false);
            }
        }
        let idx = self.parents.len();
        bucket.push(idx);
        self.parents.push(parent);
        self.perms.push(perm);
        self.words.extend_from_slice(cand);
        (idx, true)
    }
}

fn fingerprint_state<A: Algorithm>(state: &SystemState<A>) -> u64
where
    A::Local: Hash,
    A::Edge: Hash,
{
    fingerprint(&(state.locals(), state.edges()))
}

pub(crate) fn enabled_moves<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    state: &SystemState<A>,
    health: &[Health],
    needs: &[bool],
) -> Vec<Move> {
    let mut moves = Vec::new();
    enabled_moves_into(alg, topo, state, health, needs, &mut moves);
    moves
}

pub(crate) fn enabled_moves_into<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    state: &SystemState<A>,
    health: &[Health],
    needs: &[bool],
    moves: &mut Vec<Move>,
) {
    for p in topo.processes() {
        if !health[p.index()].is_live() {
            continue;
        }
        let view = View::new(topo, state, p, needs[p.index()]);
        for (ki, kind) in alg.kinds().iter().enumerate() {
            if kind.per_neighbor {
                for slot in 0..topo.degree(p) {
                    let a = crate::algorithm::ActionId::at_slot(ki, slot);
                    if alg.enabled(&view, a) {
                        moves.push(Move { pid: p, action: a });
                    }
                }
            } else {
                let a = crate::algorithm::ActionId::global(ki);
                if alg.enabled(&view, a) {
                    moves.push(Move { pid: p, action: a });
                }
            }
        }
    }
}

pub(crate) fn apply<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    state: &SystemState<A>,
    mv: Move,
    needs: &[bool],
) -> SystemState<A> {
    let mut next = state.clone();
    let writes: Vec<Write<A>> = {
        let view = View::new(topo, state, mv.pid, needs[mv.pid.index()]);
        alg.execute(&view, mv.action)
    };
    for w in writes {
        match w {
            Write::Local(l) => *next.local_mut(mv.pid) = l,
            Write::Edge { neighbor, value } => {
                let e = topo
                    .edge_between(mv.pid, neighbor)
                    .expect("edge write to neighbor");
                *next.edge_mut(e) = value;
            }
        }
    }
    next
}

fn rebuild_trace(parents: &[Option<(usize, Move)>], mut idx: usize) -> Vec<Move> {
    let mut trace = Vec::new();
    while let Some((parent, mv)) = parents[idx] {
        trace.push(mv);
        idx = parent;
    }
    trace.reverse();
    trace
}

/// Rehydrate a violation trace from a packed (possibly symmetry-reduced)
/// search into a concrete trace of the original system.
///
/// Each stored state `C` satisfies `C = ρ · S`, where `S` is the raw
/// successor reached from its canonical parent by the stored move and
/// `ρ` the canonicalizing permutation (for the root, `S` is the original
/// initial state). Walking root→violation, maintain the frame map
/// `σ` = "canonical coordinates → original coordinates": at the root
/// `σ₀ = ρ₀⁻¹`; each stored move (expressed in the canonical parent's
/// frame) becomes the concrete move `σ(m)`; and after descending through
/// a child with permutation `ρ`, the frame composes as `σ ← σ ∘ ρ⁻¹`.
/// By equivariance the resulting moves are enabled in the original
/// system and end in a state that violates the (symmetric) predicate.
/// With the identity group every `σ` is the identity and this reduces to
/// plain parent-link walking.
pub(crate) fn rebuild_trace_packed(
    topo: &Topology,
    group: &SymmetryGroup,
    search: &PackedSearch,
    violating: usize,
) -> Vec<Move> {
    // Collect the path root..=violating as (state index, move-from-parent).
    let mut chain: Vec<(usize, Option<Move>)> = Vec::new();
    let mut i = violating;
    loop {
        match search.parents[i] {
            Some((p, mv)) => {
                chain.push((i, Some(mv)));
                i = p;
            }
            None => {
                chain.push((i, None));
                break;
            }
        }
    }
    chain.reverse();

    if group.is_trivial() {
        return chain.iter().filter_map(|&(_, mv)| mv).collect();
    }

    let inverses: Vec<Perm> = group.perms().iter().map(|p| p.inverse(topo)).collect();
    let root_perm = search.perms[chain[0].0] as usize;
    let mut sigma = inverses[root_perm].clone();
    let mut trace = Vec::with_capacity(chain.len() - 1);
    for &(idx, mv) in &chain[1..] {
        let mv = mv.expect("non-root state has a parent move");
        trace.push(sigma.permute_move(topo, mv));
        sigma = sigma.compose(topo, &inverses[search.perms[idx] as usize]);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Phase;
    use crate::graph::ProcessId;
    use crate::graph::Topology;
    use crate::toy::ToyDiners;

    fn live(n: usize) -> Vec<Health> {
        vec![Health::Live; n]
    }

    fn exclusion(snap: &Snapshot<'_, ToyDiners>) -> bool {
        snap.topo.edges().iter().all(|&(a, b)| {
            !(*snap.state.local(a) == Phase::Eating && *snap.state.local(b) == Phase::Eating)
        })
    }

    #[test]
    fn toy_diners_exclusion_verified_on_a_line() {
        let topo = Topology::line(3);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(3),
            &[true; 3],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified(), "{report:?}");
        assert_eq!(report.deadlocks, 0);
        // 3 processes x 3 phases = up to 27 states; all reachable except
        // those with adjacent eaters.
        assert!(report.states <= 27, "{}", report.states);
        assert!(report.transitions > 0);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn toy_diners_exclusion_verified_on_a_ring() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn violation_is_found_and_traced_from_a_bad_start() {
        // Start with two adjacent eaters: the initial state itself
        // violates exclusion.
        let topo = Topology::line(2);
        let mut initial = SystemState::initial(&ToyDiners, &topo);
        *initial.local_mut(ProcessId(0)) = Phase::Eating;
        *initial.local_mut(ProcessId(1)) = Phase::Eating;
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(2),
            &[true; 2],
            exclusion,
            Limits::default(),
        );
        assert!(!report.verified());
        assert_eq!(report.violation, Some(Vec::new()), "violated at depth 0");
    }

    #[test]
    fn sated_system_deadlocks_quietly() {
        // Nobody needs to eat: the all-thinking state has no enabled
        // move; it is the single (expected) "deadlock".
        let topo = Topology::line(2);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(2),
            &[false; 2],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified());
        assert_eq!(report.states, 1);
        assert_eq!(report.deadlocks, 1);
    }

    #[test]
    fn truncation_is_reported() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits { max_states: 3 },
        );
        assert!(report.truncated);
        assert!(!report.verified());
    }

    #[test]
    fn dead_process_takes_no_moves() {
        let topo = Topology::line(2);
        let mut initial = SystemState::initial(&ToyDiners, &topo);
        *initial.local_mut(ProcessId(0)) = Phase::Eating; // dead while eating
        let mut health = live(2);
        health[0] = Health::Dead;
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &health,
            &[true; 2],
            exclusion,
            Limits::default(),
        );
        // p1 can only join (enter blocked by the dead eater): states are
        // {E,T}, {E,H}.
        assert!(report.verified(), "{report:?}");
        assert_eq!(report.states, 2);
    }

    #[test]
    fn interning_resolves_forced_fingerprint_collisions() {
        let topo = Topology::line(2);
        let mut search: Search<ToyDiners> = Search::new();
        let a = SystemState::initial(&ToyDiners, &topo);
        let mut b = SystemState::initial(&ToyDiners, &topo);
        *b.local_mut(ProcessId(0)) = Phase::Hungry;
        // Force both distinct states into the same bucket: interning must
        // still tell them apart by full-state comparison.
        let (ia, new_a) = search.intern(a.clone(), 42, None);
        let (ib, new_b) = search.intern(b, 42, None);
        assert!(new_a && new_b);
        assert_ne!(ia, ib);
        let (ia2, new_a2) = search.intern(a, 42, None);
        assert_eq!(ia2, ia);
        assert!(!new_a2, "re-interning an existing state is a no-op");
        assert_eq!(search.states.len(), 2);
    }

    #[test]
    fn packed_interning_resolves_forced_fingerprint_collisions() {
        let mut search = PackedSearch::new(1);
        let (ia, new_a) = search.intern(&[3], 42, None, 0);
        let (ib, new_b) = search.intern(&[5], 42, None, 0);
        assert!(new_a && new_b);
        assert_ne!(ia, ib);
        let (ia2, new_a2) = search.intern(&[3], 42, None, 0);
        assert_eq!(ia2, ia);
        assert!(!new_a2);
        assert_eq!(search.len(), 2);
    }

    /// Reports must agree field-for-field (modulo wall-clock and thread
    /// count).
    fn assert_same_search(a: &ExplorationReport, b: &ExplorationReport) {
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.deadlocks, b.deadlocks);
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.layers, b.layers);
        assert_eq!(a.peak_frontier, b.peak_frontier);
        assert_eq!(a.dedup_hits, b.dedup_hits);
    }

    #[test]
    fn layer_stats_populated_in_sequential_path() {
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let rep = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(5),
            &[true; 5],
            exclusion,
            Limits::default(),
        );
        assert!(rep.layers > 1, "expected multiple BFS layers");
        assert!(rep.peak_frontier >= 1);
        assert!(rep.dedup_hits > 0, "a ring search must revisit states");
        assert!(rep.dedup_rate() > 0.0 && rep.dedup_rate() < 1.0);
        assert_eq!(
            rep.transitions,
            rep.dedup_hits + rep.states as u64 - 1,
            "every transition either discovers a state or is a dedup hit"
        );
        assert!(rep.bytes_interned > 0);
        assert!(rep.peak_states >= rep.states);
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let seq = explore(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(5),
            &[true; 5],
            exclusion,
            Limits::default(),
        );
        for threads in [2, 4] {
            let par = explore_parallel(
                &ToyDiners,
                &topo,
                initial.clone(),
                &live(5),
                &[true; 5],
                exclusion,
                Limits::default(),
                threads,
            );
            assert_same_search(&seq, &par);
            // Requested threads are clamped to the host's parallelism.
            assert_eq!(par.threads, threads.min(available_parallelism()));
        }
    }

    #[test]
    fn parallel_search_matches_sequential_on_truncation() {
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let limits = Limits { max_states: 17 };
        let seq = explore(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(5),
            &[true; 5],
            exclusion,
            limits,
        );
        let par = explore_parallel(
            &ToyDiners,
            &topo,
            initial,
            &live(5),
            &[true; 5],
            exclusion,
            limits,
            3,
        );
        assert!(seq.truncated);
        assert_same_search(&seq, &par);
    }

    #[test]
    fn parallel_search_finds_the_same_violation_trace() {
        // Exclusion violations are reachable when a "safety" predicate
        // forbids something the toy algorithm actually does: claim no
        // process ever eats.
        let nobody_eats = |snap: &Snapshot<'_, ToyDiners>| {
            snap.topo
                .processes()
                .all(|p| *snap.state.local(p) != Phase::Eating)
        };
        let topo = Topology::line(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let seq = explore(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(4),
            &[true; 4],
            nobody_eats,
            Limits::default(),
        );
        let par = explore_parallel(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            nobody_eats,
            Limits::default(),
            4,
        );
        assert!(seq.violation.is_some());
        assert_same_search(&seq, &par);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let topo = Topology::line(3);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore_parallel(
            &ToyDiners,
            &topo,
            initial,
            &live(3),
            &[true; 3],
            exclusion,
            Limits::default(),
            0,
        );
        assert!(report.verified());
        assert_eq!(report.threads, available_parallelism());
    }

    #[test]
    fn oversubscribed_threads_are_clamped_to_the_host() {
        // Requesting more workers than cores must not pessimize: the
        // report reflects the clamp, and on a single-core host the result
        // is the sequential report itself.
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let par = explore_parallel(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(4),
            &[true; 4],
            exclusion,
            Limits::default(),
            1024,
        );
        assert_eq!(par.threads, available_parallelism());
        let seq = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits::default(),
        );
        assert_same_search(&seq, &par);
    }

    #[test]
    fn packed_matches_cloned_baseline_exactly() {
        // Reduction::Packed changes only the representation: every
        // search-shaped report field must equal the cloned baseline's.
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let run = |reduction| {
            explore_with(
                &ToyDiners,
                &topo,
                initial.clone(),
                &live(5),
                &[true; 5],
                exclusion,
                ExploreConfig {
                    reduction,
                    ..ExploreConfig::default()
                },
            )
        };
        let cloned = run(Reduction::None);
        let packed = run(Reduction::Packed);
        assert_same_search(&cloned, &packed);
        assert!(
            packed.bytes_interned * 4 <= cloned.bytes_interned,
            "packed arena ({}) must be ≥4x smaller than cloned ({})",
            packed.bytes_interned,
            cloned.bytes_interned
        );
    }

    #[test]
    fn packed_matches_cloned_on_violation_traces() {
        let nobody_eats = |snap: &Snapshot<'_, ToyDiners>| {
            snap.topo
                .processes()
                .all(|p| *snap.state.local(p) != Phase::Eating)
        };
        let topo = Topology::line(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let run = |reduction| {
            explore_with(
                &ToyDiners,
                &topo,
                initial.clone(),
                &live(4),
                &[true; 4],
                nobody_eats,
                ExploreConfig {
                    reduction,
                    ..ExploreConfig::default()
                },
            )
        };
        let cloned = run(Reduction::None);
        let packed = run(Reduction::Packed);
        assert!(cloned.violation.is_some());
        assert_same_search(&cloned, &packed);
    }

    #[test]
    fn symmetry_on_non_equivariant_algorithm_degrades_to_packed() {
        // ToyDiners breaks ties by absolute id, so respects_symmetry is
        // false and Reduction::Symmetry must behave exactly like Packed.
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let run = |reduction| {
            explore_with(
                &ToyDiners,
                &topo,
                initial.clone(),
                &live(5),
                &[true; 5],
                exclusion,
                ExploreConfig {
                    reduction,
                    ..ExploreConfig::default()
                },
            )
        };
        let packed = run(Reduction::Packed);
        let sym = run(Reduction::Symmetry);
        assert_same_search(&packed, &sym);
    }

    #[test]
    fn states_per_sec_is_finite() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits::default(),
        );
        let rate = report.states_per_sec();
        assert!(rate.is_finite() && rate >= 0.0);
        assert!(report.bytes_per_state() > 0.0);
    }
}
