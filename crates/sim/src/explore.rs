//! Exhaustive state-space exploration (bounded model checking).
//!
//! For small systems the guarded-command model is finite enough to
//! enumerate *every* reachable state under *every* daemon — a much
//! stronger check than any sampled schedule: a safety property verified
//! here holds for all weakly fair computations (and all unfair ones).
//!
//! [`explore`] runs a BFS over global states from a given initial state,
//! following every enabled move of every live process, checking a safety
//! predicate in each state and reporting deadlocks (states with no
//! enabled move). The search is bounded by [`Limits::max_states`]; the
//! report says whether it was truncated, so "verified" is only claimed
//! for complete searches.
//!
//! # Performance architecture
//!
//! States are identified by a 64-bit [`crate::fingerprint`] instead of a
//! full cloned key; fingerprint collisions are resolved by comparing the
//! candidate against the states already interned in that fingerprint's
//! bucket, so deduplication is exact, not probabilistic.
//!
//! The BFS is *layered*: the frontier at depth `d` is fully expanded
//! (moves enumerated, successors and fingerprints computed — the
//! expensive part), then merged sequentially in frontier order into the
//! visited set. Layering leaves the discovery order, transition counts,
//! deadlock counts, and early-exit points identical to the classic
//! FIFO-queue formulation, but makes the expansion embarrassingly
//! parallel: [`explore_parallel`] shards each frontier across scoped
//! worker threads and reassembles the per-shard results in shard order,
//! so its report is bit-identical to [`explore`]'s.
//!
//! The workload must be state-independent for the state space to be
//! well-defined: each process either always or never "needs" to eat
//! (the per-process `needs` mask).

use std::hash::Hash;
use std::time::{Duration, Instant};

use crossbeam::{channel, thread};

use crate::algorithm::{Algorithm, Move, SystemState, View, Write};
use crate::fault::Health;
use crate::fingerprint::{fingerprint, FingerprintMap};
use crate::graph::Topology;
use crate::predicate::Snapshot;

/// Exploration bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Stop after visiting this many distinct states.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 1_000_000,
        }
    }
}

/// Result of an exhaustive search.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions (state, move) explored.
    pub transitions: u64,
    /// Number of distinct deadlock states (no move enabled anywhere).
    pub deadlocks: usize,
    /// The move sequence to the first property violation, if any.
    pub violation: Option<Vec<Move>>,
    /// Whether the search hit [`Limits::max_states`] before completing.
    pub truncated: bool,
    /// Wall-clock time the search took.
    pub elapsed: Duration,
    /// Worker threads used to expand frontiers (1 = sequential).
    pub threads: usize,
    /// BFS layers expanded (frontier generations, excluding the empty
    /// final one).
    pub layers: usize,
    /// Largest frontier expanded in any layer.
    pub peak_frontier: usize,
    /// Successor states already interned when reached again (dedup
    /// rate = `dedup_hits / transitions`).
    pub dedup_hits: u64,
}

impl ExplorationReport {
    /// Whether the property was verified over the *complete* reachable
    /// state space.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }

    /// Distinct states visited per second of wall-clock time (`0.0` when
    /// the search finished too fast to time).
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of explored transitions that landed on an already-known
    /// state (`0.0` before any transition).
    pub fn dedup_rate(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.transitions as f64
        }
    }
}

/// Exhaustively explore the reachable state space of `alg` on `topo`
/// from `initial` with the given health vector and per-process `needs`
/// mask, checking `safety` in every reachable state.
///
/// # Panics
///
/// Panics if `needs` or `health` length differs from the topology size.
pub fn explore<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
) -> ExplorationReport
where
    A: Algorithm,
    A::Local: Hash + Eq,
    A::Edge: Hash + Eq,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    assert_eq!(needs.len(), topo.len(), "needs mask size mismatch");
    assert_eq!(health.len(), topo.len(), "health vector size mismatch");
    search_loop(
        topo,
        initial,
        health,
        safety,
        limits,
        1,
        |frontier, states| {
            frontier
                .iter()
                .map(|&i| expand_state(alg, topo, states, i, health, needs))
                .collect()
        },
    )
}

/// [`explore`] with frontier expansion sharded across `threads` scoped
/// worker threads (`0` = one per available core). The report —
/// discovery order, counts, violation trace, truncation point — is
/// bit-identical to the sequential search's; only the wall-clock time
/// changes.
///
/// # Panics
///
/// Panics if `needs` or `health` length differs from the topology size,
/// or if a worker thread panics.
#[allow(clippy::too_many_arguments)]
pub fn explore_parallel<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
    threads: usize,
) -> ExplorationReport
where
    A: Algorithm + Sync,
    A::Local: Hash + Eq + Send + Sync,
    A::Edge: Hash + Eq + Send + Sync,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    assert_eq!(needs.len(), topo.len(), "needs mask size mismatch");
    assert_eq!(health.len(), topo.len(), "health vector size mismatch");
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if threads <= 1 {
        return search_loop(
            topo,
            initial,
            health,
            safety,
            limits,
            1,
            |frontier, states| {
                frontier
                    .iter()
                    .map(|&i| expand_state(alg, topo, states, i, health, needs))
                    .collect()
            },
        );
    }
    search_loop(
        topo,
        initial,
        health,
        safety,
        limits,
        threads,
        |frontier, states| {
            // Tiny frontiers aren't worth the spawn cost; expand inline.
            // (Same results either way — only the wall-clock differs.)
            if frontier.len() < threads * 4 {
                return frontier
                    .iter()
                    .map(|&i| expand_state(alg, topo, states, i, health, needs))
                    .collect();
            }
            let chunk_size = frontier.len().div_ceil(threads);
            let nchunks = frontier.len().div_ceil(chunk_size);
            let (tx, rx) = channel::unbounded();
            let parts = thread::scope(|s| {
                for (ci, chunk) in frontier.chunks(chunk_size).enumerate() {
                    let tx = tx.clone();
                    s.spawn(move |_| {
                        let out: Vec<Expansion<A>> = chunk
                            .iter()
                            .map(|&i| expand_state(alg, topo, states, i, health, needs))
                            .collect();
                        // The receiver outlives the scope; send can't fail
                        // unless the merge side already panicked.
                        let _ = tx.send((ci, out));
                    });
                }
                drop(tx);
                let mut parts: Vec<Option<Vec<Expansion<A>>>> =
                    (0..nchunks).map(|_| None).collect();
                while let Ok((ci, out)) = rx.recv() {
                    parts[ci] = Some(out);
                }
                parts
            })
            .expect("explore worker panicked");
            // Reassemble in shard order: identical to sequential expansion.
            parts
                .into_iter()
                .flat_map(|p| p.expect("missing shard result"))
                .collect()
        },
    )
}

/// All successors of one frontier state: the enabled moves applied, with
/// each successor's fingerprint precomputed (in the worker, when
/// parallel). An empty `succs` marks a deadlock state.
struct Expansion<A: Algorithm> {
    parent: usize,
    succs: Vec<(Move, SystemState<A>, u64)>,
}

fn expand_state<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    states: &[SystemState<A>],
    idx: usize,
    health: &[Health],
    needs: &[bool],
) -> Expansion<A>
where
    A::Local: Hash,
    A::Edge: Hash,
{
    let state = &states[idx];
    let succs = enabled_moves(alg, topo, state, health, needs)
        .into_iter()
        .map(|mv| {
            let next = apply(alg, topo, state, mv, needs);
            let fp = fingerprint_state(&next);
            (mv, next, fp)
        })
        .collect();
    Expansion { parent: idx, succs }
}

/// The layered BFS driver shared by the sequential and parallel searches.
/// `expand_layer` turns a frontier (indices into the state arena) into
/// one `Expansion` per frontier state, *in frontier order*; the merge
/// below is sequential either way, which is what makes the two searches
/// produce identical reports.
fn search_loop<A, F, E>(
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    safety: F,
    limits: Limits,
    threads: usize,
    mut expand_layer: E,
) -> ExplorationReport
where
    A: Algorithm,
    A::Local: Hash + Eq,
    A::Edge: Hash + Eq,
    F: Fn(&Snapshot<'_, A>) -> bool,
    E: FnMut(&[usize], &[SystemState<A>]) -> Vec<Expansion<A>>,
{
    let start = Instant::now();
    let mut report = ExplorationReport {
        states: 0,
        transitions: 0,
        deadlocks: 0,
        violation: None,
        truncated: false,
        elapsed: Duration::ZERO,
        threads,
        layers: 0,
        peak_frontier: 0,
        dedup_hits: 0,
    };

    let check = |state: &SystemState<A>| -> bool {
        let snap = Snapshot::new(topo, state, health);
        safety(&snap)
    };

    if !check(&initial) {
        report.states = 1;
        report.violation = Some(Vec::new());
        report.elapsed = start.elapsed();
        return report;
    }

    let mut search = Search::new();
    let fp = fingerprint_state(&initial);
    search.intern(initial, fp, None);
    let mut frontier = vec![0usize];

    'bfs: while !frontier.is_empty() {
        // Per-layer stats run in the sequential merge, so the sequential
        // and parallel paths populate them identically.
        report.layers += 1;
        report.peak_frontier = report.peak_frontier.max(frontier.len());
        let expansions = expand_layer(&frontier, &search.states);
        let mut next_frontier = Vec::new();
        for exp in expansions {
            if exp.succs.is_empty() {
                report.deadlocks += 1;
                continue;
            }
            for (mv, next, fp) in exp.succs {
                report.transitions += 1;
                let (idx, is_new) = search.intern(next, fp, Some((exp.parent, mv)));
                if !is_new {
                    report.dedup_hits += 1;
                    continue;
                }
                if !check(&search.states[idx]) {
                    report.violation = Some(rebuild_trace(&search.parents, idx));
                    break 'bfs;
                }
                if search.states.len() >= limits.max_states {
                    report.truncated = true;
                    break 'bfs;
                }
                next_frontier.push(idx);
            }
        }
        frontier = next_frontier;
    }

    report.states = search.states.len();
    report.elapsed = start.elapsed();
    report
}

/// The visited set: a state arena plus a fingerprint index into it.
struct Search<A: Algorithm> {
    /// fingerprint -> indices of interned states with that fingerprint.
    ids: FingerprintMap<Vec<usize>>,
    /// (parent index, move from parent) per state, for trace rebuild.
    parents: Vec<Option<(usize, Move)>>,
    states: Vec<SystemState<A>>,
}

impl<A: Algorithm> Search<A>
where
    A::Local: Eq,
    A::Edge: Eq,
{
    fn new() -> Self {
        Search {
            ids: FingerprintMap::default(),
            parents: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Intern `next` under fingerprint `fp`: returns its arena index and
    /// whether it was new. Collisions are resolved exactly, by comparing
    /// against every state already in the fingerprint's bucket.
    fn intern(
        &mut self,
        next: SystemState<A>,
        fp: u64,
        parent: Option<(usize, Move)>,
    ) -> (usize, bool) {
        let bucket = self.ids.entry(fp).or_default();
        for &i in bucket.iter() {
            let s = &self.states[i];
            if s.locals() == next.locals() && s.edges() == next.edges() {
                return (i, false);
            }
        }
        let idx = self.states.len();
        bucket.push(idx);
        self.parents.push(parent);
        self.states.push(next);
        (idx, true)
    }
}

fn fingerprint_state<A: Algorithm>(state: &SystemState<A>) -> u64
where
    A::Local: Hash,
    A::Edge: Hash,
{
    fingerprint(&(state.locals(), state.edges()))
}

fn enabled_moves<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    state: &SystemState<A>,
    health: &[Health],
    needs: &[bool],
) -> Vec<Move> {
    let mut moves = Vec::new();
    for p in topo.processes() {
        if !health[p.index()].is_live() {
            continue;
        }
        let view = View::new(topo, state, p, needs[p.index()]);
        for (ki, kind) in alg.kinds().iter().enumerate() {
            if kind.per_neighbor {
                for slot in 0..topo.degree(p) {
                    let a = crate::algorithm::ActionId::at_slot(ki, slot);
                    if alg.enabled(&view, a) {
                        moves.push(Move { pid: p, action: a });
                    }
                }
            } else {
                let a = crate::algorithm::ActionId::global(ki);
                if alg.enabled(&view, a) {
                    moves.push(Move { pid: p, action: a });
                }
            }
        }
    }
    moves
}

fn apply<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    state: &SystemState<A>,
    mv: Move,
    needs: &[bool],
) -> SystemState<A> {
    let mut next = state.clone();
    let writes: Vec<Write<A>> = {
        let view = View::new(topo, state, mv.pid, needs[mv.pid.index()]);
        alg.execute(&view, mv.action)
    };
    for w in writes {
        match w {
            Write::Local(l) => *next.local_mut(mv.pid) = l,
            Write::Edge { neighbor, value } => {
                let e = topo
                    .edge_between(mv.pid, neighbor)
                    .expect("edge write to neighbor");
                *next.edge_mut(e) = value;
            }
        }
    }
    next
}

fn rebuild_trace(parents: &[Option<(usize, Move)>], mut idx: usize) -> Vec<Move> {
    let mut trace = Vec::new();
    while let Some((parent, mv)) = parents[idx] {
        trace.push(mv);
        idx = parent;
    }
    trace.reverse();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Phase;
    use crate::graph::ProcessId;
    use crate::graph::Topology;
    use crate::toy::ToyDiners;

    fn live(n: usize) -> Vec<Health> {
        vec![Health::Live; n]
    }

    fn exclusion(snap: &Snapshot<'_, ToyDiners>) -> bool {
        snap.topo.edges().iter().all(|&(a, b)| {
            !(*snap.state.local(a) == Phase::Eating && *snap.state.local(b) == Phase::Eating)
        })
    }

    #[test]
    fn toy_diners_exclusion_verified_on_a_line() {
        let topo = Topology::line(3);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(3),
            &[true; 3],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified(), "{report:?}");
        assert_eq!(report.deadlocks, 0);
        // 3 processes x 3 phases = up to 27 states; all reachable except
        // those with adjacent eaters.
        assert!(report.states <= 27, "{}", report.states);
        assert!(report.transitions > 0);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn toy_diners_exclusion_verified_on_a_ring() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn violation_is_found_and_traced_from_a_bad_start() {
        // Start with two adjacent eaters: the initial state itself
        // violates exclusion.
        let topo = Topology::line(2);
        let mut initial = SystemState::initial(&ToyDiners, &topo);
        *initial.local_mut(ProcessId(0)) = Phase::Eating;
        *initial.local_mut(ProcessId(1)) = Phase::Eating;
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(2),
            &[true; 2],
            exclusion,
            Limits::default(),
        );
        assert!(!report.verified());
        assert_eq!(report.violation, Some(Vec::new()), "violated at depth 0");
    }

    #[test]
    fn sated_system_deadlocks_quietly() {
        // Nobody needs to eat: the all-thinking state has no enabled
        // move; it is the single (expected) "deadlock".
        let topo = Topology::line(2);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(2),
            &[false; 2],
            exclusion,
            Limits::default(),
        );
        assert!(report.verified());
        assert_eq!(report.states, 1);
        assert_eq!(report.deadlocks, 1);
    }

    #[test]
    fn truncation_is_reported() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits { max_states: 3 },
        );
        assert!(report.truncated);
        assert!(!report.verified());
    }

    #[test]
    fn dead_process_takes_no_moves() {
        let topo = Topology::line(2);
        let mut initial = SystemState::initial(&ToyDiners, &topo);
        *initial.local_mut(ProcessId(0)) = Phase::Eating; // dead while eating
        let mut health = live(2);
        health[0] = Health::Dead;
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &health,
            &[true; 2],
            exclusion,
            Limits::default(),
        );
        // p1 can only join (enter blocked by the dead eater): states are
        // {E,T}, {E,H}.
        assert!(report.verified(), "{report:?}");
        assert_eq!(report.states, 2);
    }

    #[test]
    fn interning_resolves_forced_fingerprint_collisions() {
        let topo = Topology::line(2);
        let mut search: Search<ToyDiners> = Search::new();
        let a = SystemState::initial(&ToyDiners, &topo);
        let mut b = SystemState::initial(&ToyDiners, &topo);
        *b.local_mut(ProcessId(0)) = Phase::Hungry;
        // Force both distinct states into the same bucket: interning must
        // still tell them apart by full-state comparison.
        let (ia, new_a) = search.intern(a.clone(), 42, None);
        let (ib, new_b) = search.intern(b, 42, None);
        assert!(new_a && new_b);
        assert_ne!(ia, ib);
        let (ia2, new_a2) = search.intern(a, 42, None);
        assert_eq!(ia2, ia);
        assert!(!new_a2, "re-interning an existing state is a no-op");
        assert_eq!(search.states.len(), 2);
    }

    /// Reports must agree field-for-field (modulo wall-clock and thread
    /// count).
    fn assert_same_search(a: &ExplorationReport, b: &ExplorationReport) {
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.deadlocks, b.deadlocks);
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.layers, b.layers);
        assert_eq!(a.peak_frontier, b.peak_frontier);
        assert_eq!(a.dedup_hits, b.dedup_hits);
    }

    #[test]
    fn layer_stats_populated_in_sequential_path() {
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let rep = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(5),
            &[true; 5],
            exclusion,
            Limits::default(),
        );
        assert!(rep.layers > 1, "expected multiple BFS layers");
        assert!(rep.peak_frontier >= 1);
        assert!(rep.dedup_hits > 0, "a ring search must revisit states");
        assert!(rep.dedup_rate() > 0.0 && rep.dedup_rate() < 1.0);
        assert_eq!(
            rep.transitions,
            rep.dedup_hits + rep.states as u64 - 1,
            "every transition either discovers a state or is a dedup hit"
        );
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let seq = explore(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(5),
            &[true; 5],
            exclusion,
            Limits::default(),
        );
        for threads in [2, 4] {
            let par = explore_parallel(
                &ToyDiners,
                &topo,
                initial.clone(),
                &live(5),
                &[true; 5],
                exclusion,
                Limits::default(),
                threads,
            );
            assert_same_search(&seq, &par);
            assert_eq!(par.threads, threads);
        }
    }

    #[test]
    fn parallel_search_matches_sequential_on_truncation() {
        let topo = Topology::ring(5);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let limits = Limits { max_states: 17 };
        let seq = explore(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(5),
            &[true; 5],
            exclusion,
            limits,
        );
        let par = explore_parallel(
            &ToyDiners,
            &topo,
            initial,
            &live(5),
            &[true; 5],
            exclusion,
            limits,
            3,
        );
        assert!(seq.truncated);
        assert_same_search(&seq, &par);
    }

    #[test]
    fn parallel_search_finds_the_same_violation_trace() {
        // Exclusion violations are reachable when a "safety" predicate
        // forbids something the toy algorithm actually does: claim no
        // process ever eats.
        let nobody_eats = |snap: &Snapshot<'_, ToyDiners>| {
            snap.topo
                .processes()
                .all(|p| *snap.state.local(p) != Phase::Eating)
        };
        let topo = Topology::line(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let seq = explore(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(4),
            &[true; 4],
            nobody_eats,
            Limits::default(),
        );
        let par = explore_parallel(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            nobody_eats,
            Limits::default(),
            4,
        );
        assert!(seq.violation.is_some());
        assert_same_search(&seq, &par);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let topo = Topology::line(3);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore_parallel(
            &ToyDiners,
            &topo,
            initial,
            &live(3),
            &[true; 3],
            exclusion,
            Limits::default(),
            0,
        );
        assert!(report.verified());
        assert!(report.threads >= 1);
    }

    #[test]
    fn states_per_sec_is_finite() {
        let topo = Topology::ring(4);
        let initial = SystemState::initial(&ToyDiners, &topo);
        let report = explore(
            &ToyDiners,
            &topo,
            initial,
            &live(4),
            &[true; 4],
            exclusion,
            Limits::default(),
        );
        let rate = report.states_per_sec();
        assert!(rate.is_finite() && rate >= 0.0);
    }
}
