//! A synchronous (maximally concurrent) daemon — the model the paper's
//! algorithm is *not* designed for.
//!
//! The paper's computation model executes one enabled action at a time
//! with its guard and command atomic (composite atomicity, central
//! daemon). [`SyncEngine`] instead runs *rounds*: every live process
//! evaluates its guards against the same pre-state, each picks one
//! enabled action, and all commands are applied together. This breaks
//! the atomicity assumption — two hungry neighbors can both observe
//! "ancestor thinking / descendant not eating" and `enter`
//! simultaneously — and is exactly why the message-passing
//! transformation of §4 needs a synchronization handshake rather than a
//! naive translation. The T8 experiment uses this engine to show which
//! algorithms are robust to the daemon (token/fork-based exclusion) and
//! which are not (state-reading guards).
//!
//! Write conflicts on shared edge variables (both endpoints writing the
//! same edge in one round) are resolved in favor of the lower process
//! id, deterministically.

use rand::rngs::StdRng;
use rand::Rng;

use crate::algorithm::{ActionId, DinerAlgorithm, Move, Phase, SystemState, View, Write};
use crate::graph::{ProcessId, Topology};
use crate::rng;

/// A synchronous-rounds executor; see the module docs.
pub struct SyncEngine<A: DinerAlgorithm> {
    alg: A,
    topo: Topology,
    state: SystemState<A>,
    rng: StdRng,
    round: u64,
    meals: Vec<u64>,
    /// Rounds in which at least one pair of neighbors was simultaneously
    /// eating.
    violation_rounds: u64,
}

impl<A: DinerAlgorithm> SyncEngine<A> {
    /// A synchronous engine on the algorithm's legitimate initial state
    /// with an always-hungry workload.
    pub fn new(alg: A, topo: Topology, seed: u64) -> Self {
        let state = SystemState::initial(&alg, &topo);
        SyncEngine {
            meals: vec![0; topo.len()],
            alg,
            state,
            rng: rng::rng(rng::subseed(seed, 0x5CCE)),
            round: 0,
            violation_rounds: 0,
            topo,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Rounds executed.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Meals completed by `p`.
    pub fn meals_of(&self, p: ProcessId) -> u64 {
        self.meals[p.index()]
    }

    /// Rounds with two neighbors simultaneously eating.
    pub fn violation_rounds(&self) -> u64 {
        self.violation_rounds
    }

    /// The current phase of `p`.
    pub fn phase_of(&self, p: ProcessId) -> Phase {
        self.alg.phase(self.state.local(p))
    }

    /// Execute one synchronous round: all guards against the pre-state,
    /// one action per process, all commands applied together.
    pub fn round(&mut self) {
        // Select one enabled move per process against the frozen state.
        let mut selected: Vec<Move> = Vec::new();
        for p in self.topo.processes() {
            let view = View::new(&self.topo, &self.state, p, true);
            let mut enabled: Vec<ActionId> = Vec::new();
            for (ki, kind) in self.alg.kinds().iter().enumerate() {
                if kind.per_neighbor {
                    for slot in 0..self.topo.degree(p) {
                        let a = ActionId::at_slot(ki, slot);
                        if self.alg.enabled(&view, a) {
                            enabled.push(a);
                        }
                    }
                } else {
                    let a = ActionId::global(ki);
                    if self.alg.enabled(&view, a) {
                        enabled.push(a);
                    }
                }
            }
            if !enabled.is_empty() {
                let action = enabled[self.rng.gen_range(0..enabled.len())];
                selected.push(Move { pid: p, action });
            }
        }

        // Compute all writes against the pre-state, then apply: locals
        // first (each process writes only its own), then edges with the
        // lower-id writer winning conflicts.
        let mut local_writes: Vec<(ProcessId, A::Local)> = Vec::new();
        let mut edge_writes: Vec<(ProcessId, ProcessId, A::Edge)> = Vec::new();
        for mv in &selected {
            let view = View::new(&self.topo, &self.state, mv.pid, true);
            for w in self.alg.execute(&view, mv.action) {
                match w {
                    Write::Local(l) => local_writes.push((mv.pid, l)),
                    Write::Edge { neighbor, value } => edge_writes.push((mv.pid, neighbor, value)),
                }
            }
        }
        let before: Vec<Phase> = self
            .topo
            .processes()
            .map(|p| self.alg.phase(self.state.local(p)))
            .collect();
        for (p, l) in local_writes {
            *self.state.local_mut(p) = l;
        }
        // Higher-id writes first so lower-id writes land last (and win).
        edge_writes.sort_by_key(|(writer, _, _)| std::cmp::Reverse(*writer));
        for (writer, neighbor, value) in edge_writes {
            let e = self
                .topo
                .edge_between(writer, neighbor)
                .expect("edge write to neighbor");
            *self.state.edge_mut(e) = value;
        }

        // Bookkeeping.
        for p in self.topo.processes() {
            let now = self.alg.phase(self.state.local(p));
            if now == Phase::Eating && before[p.index()] != Phase::Eating {
                self.meals[p.index()] += 1;
            }
        }
        let violated = self.topo.edges().iter().any(|&(a, b)| {
            self.alg.phase(self.state.local(a)) == Phase::Eating
                && self.alg.phase(self.state.local(b)) == Phase::Eating
        });
        if violated {
            self.violation_rounds += 1;
        }
        self.round += 1;
    }

    /// Execute `rounds` synchronous rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ActionKind, Algorithm, DinerAlgorithm};
    use crate::graph::{EdgeId, Topology};
    use crate::toy::ToyDiners;

    /// A deliberately daemon-naive diner: enter whenever no neighbor is
    /// eating, with no tie-break whatsoever — safe under the serial
    /// daemon, broken under the synchronous one.
    #[derive(Clone, Copy, Debug)]
    struct NaiveDiners;

    const NAIVE_KINDS: &[ActionKind] = &[
        ActionKind {
            name: "join",
            per_neighbor: false,
        },
        ActionKind {
            name: "enter",
            per_neighbor: false,
        },
        ActionKind {
            name: "exit",
            per_neighbor: false,
        },
    ];

    impl Algorithm for NaiveDiners {
        type Local = Phase;
        type Edge = ();
        fn name(&self) -> &str {
            "naive"
        }
        fn kinds(&self) -> &[ActionKind] {
            NAIVE_KINDS
        }
        fn init_local(&self, _t: &Topology, _p: ProcessId) -> Phase {
            Phase::Thinking
        }
        fn init_edge(&self, _t: &Topology, _e: EdgeId) {}
        fn enabled(&self, view: &View<'_, Self>, a: ActionId) -> bool {
            let me = *view.local();
            match a.kind {
                0 => me == Phase::Thinking && view.needs(),
                1 => {
                    me == Phase::Hungry
                        && view
                            .neighbors()
                            .iter()
                            .all(|&q| *view.neighbor_local(q) != Phase::Eating)
                }
                2 => me == Phase::Eating,
                _ => false,
            }
        }
        fn execute(&self, _v: &View<'_, Self>, a: ActionId) -> Vec<Write<Self>> {
            vec![Write::Local(match a.kind {
                0 => Phase::Hungry,
                1 => Phase::Eating,
                _ => Phase::Thinking,
            })]
        }
        fn corrupt_local(&self, _r: &mut StdRng, _t: &Topology, _p: ProcessId) -> Phase {
            Phase::Thinking
        }
        fn corrupt_edge(&self, _r: &mut StdRng, _t: &Topology, _e: EdgeId) {}
    }

    impl DinerAlgorithm for NaiveDiners {
        fn phase(&self, l: &Phase) -> Phase {
            *l
        }
    }

    #[test]
    fn naive_guards_break_under_the_synchronous_daemon() {
        let mut e = SyncEngine::new(NaiveDiners, Topology::ring(6), 0);
        e.run(2_000);
        assert!(
            e.violation_rounds() > 0,
            "two hungry neighbors must eventually enter in the same round"
        );
    }

    #[test]
    fn id_tie_break_protects_toy_diners_even_under_sync() {
        // ToyDiners' enter defers to hungry lower-id neighbors; for any
        // adjacent pair one is lower, so simultaneous enters of
        // neighbors are impossible even with stale concurrent guards.
        let mut e = SyncEngine::new(ToyDiners, Topology::ring(6), 0);
        e.run(5_000);
        assert_eq!(e.violation_rounds(), 0);
    }

    #[test]
    fn rounds_and_meals_are_counted() {
        let mut e = SyncEngine::new(ToyDiners, Topology::line(4), 1);
        e.run(500);
        assert_eq!(e.rounds(), 500);
        let total: u64 = e.topology().processes().map(|p| e.meals_of(p)).sum();
        assert!(total > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut e = SyncEngine::new(ToyDiners, Topology::ring(5), seed);
            e.run(1_000);
            (
                e.violation_rounds(),
                e.topology()
                    .processes()
                    .map(|p| e.meals_of(p))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(3), run(3));
    }
}
