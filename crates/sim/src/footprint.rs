//! Footprint analysis and contract certification for [`Algorithm`]s.
//!
//! Four shipped subsystems rest on assumptions about how an algorithm
//! reads and writes the shared-memory state:
//!
//! * the incremental engine's dirty-set soundness (a step at `p` can only
//!   change guard values inside `p`'s closed neighborhood),
//! * the causal tracer's parent computation (parents are the last writers
//!   of the guard's closed-neighborhood reads),
//! * symmetry reduction ([`StateCodec::respects_symmetry`] — until now a
//!   hand-asserted boolean), and
//! * the paper's failure-locality theorem itself, which is a footprint
//!   statement: a crash's influence is bounded by the read/write radius
//!   of actions.
//!
//! This module turns those assumptions into *checked contracts*. The core
//! is an instrumented view: [`View::traced`] attaches an [`AccessLog`]
//! that records every local/edge/needs read a guard or command performs,
//! and the returned [`Write`]s are the exact write set. Driving the
//! algorithm over a systematic state corpus ([`build_corpus`]: the full
//! corruption lattice when it is small enough, seeded `corrupt_all`
//! sweeps plus one-step successors otherwise) infers per-[`ActionKind`]
//! read/write footprints with radius bounds and feeds four certifiers:
//!
//! 1. **locality** — every guard/command read stays in the closed
//!    neighborhood, every command write targets the process's own local
//!    or an incident edge, and `malicious_writes` stays within the
//!    restricted-update capability ([`Algorithm::malicious_edge_allowed`]);
//! 2. **purity** — `enabled`/`execute` are functions of the view and
//!    `malicious_writes` is a function of (view, rng), checked by
//!    double-evaluation differentials;
//! 3. **equivariance** — decides [`StateCodec::respects_symmetry`]
//!    empirically by checking step-vs-automorphism commutation over the
//!    corpus, refuting with a concrete witness;
//! 4. **independence** — a per-(kind × kind × distance) commutativity
//!    matrix derived from footprint disjointness, the enabling artifact
//!    for partial-order reduction.
//!
//! The same [`check_write`] classifier gates every write the engine
//! applies (debug panic; rejected and counted in release), so fuzzing
//! cross-checks the static verdicts. Deliberately ill-behaved fixtures
//! live in [`testbad`]; each certifier must refute them.

pub mod testbad;

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use crate::algorithm::{ActionId, Algorithm, Move, SystemState, View, Write};
use crate::codec::{Codec, StateCodec};
use crate::graph::{EdgeId, ProcessId, Topology};
use crate::rng;
use crate::symmetry::{Perm, SymmetryGroup};

/// One read performed through a traced [`View`]; see [`AccessLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReadAccess {
    /// The process's own local state ([`View::local`]).
    OwnLocal,
    /// The workload's `needs():p` bit ([`View::needs`]).
    Needs,
    /// The local state of another process ([`View::neighbor_local`]).
    /// Carries the *target*, which locality certification checks against
    /// the closed neighborhood.
    Local(ProcessId),
    /// The shared variable on the edge towards a neighbor
    /// ([`View::edge_to`]).
    Edge(ProcessId),
}

/// Interior-mutable recorder attached to a [`View::traced`] view: every
/// state-reading accessor appends a [`ReadAccess`] here. Accessors take
/// `&self`, hence the `RefCell`.
#[derive(Debug, Default)]
pub struct AccessLog {
    reads: RefCell<Vec<ReadAccess>>,
}

impl AccessLog {
    /// An empty log.
    pub fn new() -> Self {
        AccessLog::default()
    }

    /// Append one access (called by the traced view accessors).
    pub fn record(&self, access: ReadAccess) {
        self.reads.borrow_mut().push(access);
    }

    /// Drain and return everything recorded since the last take/clear.
    pub fn take(&self) -> Vec<ReadAccess> {
        std::mem::take(&mut *self.reads.borrow_mut())
    }

    /// Discard everything recorded so far.
    pub fn clear(&self) {
        self.reads.borrow_mut().clear();
    }
}

/// A write that violates the model's write contract, as classified by
/// [`check_write`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteViolation {
    /// An edge write whose target is not adjacent to the writer.
    NonNeighborEdge {
        /// The writing process.
        pid: ProcessId,
        /// The non-adjacent target.
        neighbor: ProcessId,
    },
    /// A malicious-step edge write outside the algorithm's declared
    /// restricted-update capability ([`Algorithm::malicious_edge_allowed`]).
    CapabilityExceeded {
        /// The writing process.
        pid: ProcessId,
        /// The adjacent neighbor whose shared variable was written.
        neighbor: ProcessId,
    },
}

impl fmt::Display for WriteViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteViolation::NonNeighborEdge { pid, neighbor } => {
                write!(f, "{pid} wrote edge to non-neighbor {neighbor}")
            }
            WriteViolation::CapabilityExceeded { pid, neighbor } => write!(
                f,
                "{pid} maliciously wrote the edge to {neighbor} outside its capability"
            ),
        }
    }
}

/// Classify one write of a (possibly malicious) step against the model's
/// write contract: local writes always target the writer's own local;
/// edge writes must target an incident edge; malicious edge writes must
/// additionally pass [`Algorithm::malicious_edge_allowed`]. Used both by
/// the locality certifier and by the engine's runtime contract check.
pub fn check_write<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    pid: ProcessId,
    malicious: bool,
    w: &Write<A>,
) -> Option<WriteViolation> {
    match w {
        Write::Local(_) => None,
        Write::Edge { neighbor, value } => {
            if !topo.are_neighbors(pid, *neighbor) {
                Some(WriteViolation::NonNeighborEdge {
                    pid,
                    neighbor: *neighbor,
                })
            } else if malicious && !alg.malicious_edge_allowed(topo, pid, *neighbor, value) {
                Some(WriteViolation::CapabilityExceeded {
                    pid,
                    neighbor: *neighbor,
                })
            } else {
                None
            }
        }
    }
}

/// Aggregated read/write footprint of one evaluation context (the guard,
/// command or malicious step of one action kind) over the whole corpus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessSummary {
    /// Some evaluation read the process's own local state.
    pub reads_own_local: bool,
    /// Some evaluation read the workload's `needs()` bit.
    pub reads_needs: bool,
    /// Some evaluation read another process's local state.
    pub reads_neighbor_local: bool,
    /// Some evaluation read an incident shared edge variable.
    pub reads_edge: bool,
    /// Some evaluation wrote the process's own local state.
    pub writes_local: bool,
    /// Some evaluation wrote a shared edge variable.
    pub writes_edge: bool,
    /// Maximum graph distance of any read target (0 = own variables).
    pub read_radius: u32,
    /// Maximum write radius (0 = own local, 1 = incident edge; larger
    /// values only arise from contract violations).
    pub write_radius: u32,
}

impl AccessSummary {
    fn absorb_read(&mut self, topo: &Topology, p: ProcessId, access: ReadAccess) {
        match access {
            ReadAccess::OwnLocal => self.reads_own_local = true,
            ReadAccess::Needs => self.reads_needs = true,
            ReadAccess::Local(q) => {
                if q == p {
                    self.reads_own_local = true;
                } else {
                    self.reads_neighbor_local = true;
                    self.read_radius = self.read_radius.max(topo.distance(p, q));
                }
            }
            ReadAccess::Edge(q) => {
                self.reads_edge = true;
                self.read_radius = self.read_radius.max(topo.distance(p, q).max(1));
            }
        }
    }

    fn absorb_write(&mut self, topo: &Topology, p: ProcessId, target: Option<ProcessId>) {
        match target {
            None => self.writes_local = true,
            Some(q) => {
                self.writes_edge = true;
                self.write_radius = self.write_radius.max(topo.distance(p, q).max(1));
            }
        }
    }
}

/// The inferred footprint of one [`ActionKind`]: what its guard and its
/// command read and write, aggregated over every corpus evaluation.
#[derive(Clone, Debug)]
pub struct KindFootprint {
    /// The kind's name.
    pub name: String,
    /// Whether the kind is per-neighbor.
    pub per_neighbor: bool,
    /// Reads performed by `enabled`.
    pub guard: AccessSummary,
    /// Reads and writes performed by `execute`.
    pub command: AccessSummary,
    /// Guard evaluations sampled.
    pub guard_evals: u64,
    /// Evaluations in which the guard held (and the command ran).
    pub fires: u64,
}

/// One certified contract violation, naming the action, the process, the
/// offending access and the state it happened in.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Action kind name, or `"malicious"` for the pseudo-action.
    pub action: String,
    /// The process whose evaluation violated the contract.
    pub pid: ProcessId,
    /// What went wrong (the offending access or differential).
    pub detail: String,
    /// Debug rendering of the state (truncated), for reproduction.
    pub state: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}: {} [state {}]",
            self.action, self.pid, self.detail, self.state
        )
    }
}

/// Per-certifier verdict: how many checks ran, how many violated the
/// contract, and up to [`CertifierVerdict::MAX_WITNESSES`] concrete
/// witnesses.
#[derive(Clone, Debug, Default)]
pub struct CertifierVerdict {
    /// Individual contract checks performed.
    pub checked: u64,
    /// Total violations (may exceed the retained witnesses).
    pub violation_count: u64,
    /// The first few violations, kept as witnesses.
    pub witnesses: Vec<Violation>,
}

impl CertifierVerdict {
    /// Witness retention cap.
    pub const MAX_WITNESSES: usize = 8;

    /// Whether the contract held on every check.
    pub fn ok(&self) -> bool {
        self.violation_count == 0
    }

    fn record(&mut self, v: Violation) {
        self.violation_count += 1;
        if self.witnesses.len() < Self::MAX_WITNESSES {
            self.witnesses.push(v);
        }
    }
}

/// The equivariance decision: declared vs inferred
/// [`StateCodec::respects_symmetry`], with a refutation witness when the
/// corpus disproves commutation.
#[derive(Clone, Debug)]
pub struct EquivarianceReport {
    /// The hand-declared `respects_symmetry()` value.
    pub declared: bool,
    /// The inferred value: `false` iff commutation was refuted on the
    /// corpus (`true` means *unrefuted*, not proven).
    pub inferred: bool,
    /// Whether the decision procedure had any traction: the topology has
    /// a nontrivial automorphism group and at least one check ran. With
    /// only the identity automorphism nothing can be refuted and the
    /// declaration is passed through.
    pub decidable: bool,
    /// Commutation checks performed.
    pub checked: u64,
    /// The concrete refutation, when `inferred` is false.
    pub witness: Option<String>,
}

impl EquivarianceReport {
    /// Whether the declaration is consistent with the evidence. The check
    /// is one-sided: the corpus can *refute* equivariance (a concrete
    /// non-commuting witness) but never prove it, so declaring `false`
    /// conservatively is always consistent — symmetry reduction is merely
    /// forgone. The only unsound combination is declaring `true` while a
    /// refutation exists.
    pub fn matches_declaration(&self) -> bool {
        !(self.decidable && self.declared && !self.inferred)
    }
}

/// Distances at which the independence matrix is tabulated: 0 (same
/// process), 1 (neighbors) and 2 (the last index stands for "2 or more").
pub const INDEPENDENCE_DISTANCES: usize = 3;

/// Per-(kind × kind × distance) commutativity matrix derived from
/// footprint disjointness: two action instances at graph distance `d` are
/// *independent* when neither's write set can intersect the other's read
/// or write set. Row/column `kinds.len() - 1` is the malicious
/// pseudo-action.
#[derive(Clone, Debug)]
pub struct IndependenceMatrix {
    /// Kind names; the last entry is `"malicious"`.
    pub kinds: Vec<String>,
    /// `independent[i][j][d]`: instances of kind `i` and kind `j` at
    /// distance `d` (index 2 = "≥ 2") commute by footprint disjointness.
    pub independent: Vec<Vec<[bool; INDEPENDENCE_DISTANCES]>>,
    /// Whether the derivation is sound: it assumed the locality contract,
    /// so this is the locality certifier's verdict.
    pub sound: bool,
}

impl IndependenceMatrix {
    /// Whether kinds `i` and `j` are independent at distance `d` (`d` is
    /// clamped into the tabulated range).
    pub fn independent_at(&self, i: usize, j: usize, d: u32) -> bool {
        self.independent[i][j][(d as usize).min(INDEPENDENCE_DISTANCES - 1)]
    }

    /// Fraction of (kind, kind, distance) cells that are independent.
    pub fn density(&self) -> f64 {
        let mut total = 0u64;
        let mut indep = 0u64;
        for row in &self.independent {
            for cell in row {
                for &b in cell {
                    total += 1;
                    indep += b as u64;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            indep as f64 / total as f64
        }
    }

    /// Machine-readable JSON export (the enabling artifact for future
    /// partial-order reduction).
    pub fn to_json(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(",");
        let mut pairs = Vec::new();
        for (i, row) in self.independent.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                pairs.push(format!(
                    "{{\"a\":\"{}\",\"b\":\"{}\",\"independent_at\":[{},{},{}]}}",
                    self.kinds[i], self.kinds[j], cell[0], cell[1], cell[2]
                ));
            }
        }
        format!(
            "{{\"kinds\":[{kinds}],\"sound\":{},\"density\":{:.4},\"pairs\":[{}]}}",
            self.sound,
            self.density(),
            pairs.join(",")
        )
    }
}

/// Tuning knobs for [`analyze`].
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Corpus size cap. When the full corruption lattice fits under this
    /// cap it is enumerated exhaustively.
    pub max_states: usize,
    /// One-step successor expansion: how many corpus states to expand.
    pub successor_states: usize,
    /// `malicious_writes` samples (distinct rng seeds) per state/process.
    pub malicious_samples: u32,
    /// Corpus prefix length used for the equivariance commutation check
    /// (it multiplies by the automorphism group order).
    pub equivariance_cap: usize,
    /// Base seed for every randomized component (domain discovery,
    /// sweeps, malicious sampling). Analysis is deterministic in it.
    pub seed: u64,
}

impl AnalysisConfig {
    /// Small corpus for tests and CI smoke runs.
    pub fn quick() -> Self {
        AnalysisConfig {
            max_states: 512,
            successor_states: 128,
            malicious_samples: 2,
            equivariance_cap: 128,
            seed: 0xF007,
        }
    }

    /// The full-size configuration used for committed baselines.
    pub fn full() -> Self {
        AnalysisConfig {
            max_states: 4096,
            successor_states: 512,
            malicious_samples: 4,
            equivariance_cap: 512,
            seed: 0xF007,
        }
    }
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig::full()
    }
}

/// A deduplicated state corpus; see [`build_corpus`].
pub struct Corpus<A: Algorithm> {
    /// The states, initial state first.
    pub states: Vec<SystemState<A>>,
    /// Whether the corpus is the *complete* corruption lattice (every
    /// combination of per-position corruptible values).
    pub exhaustive: bool,
}

/// Discover the corruptible value domain of one position by sampling its
/// corruption function until no new encoded value appears for a while.
fn sample_domain<T, F: FnMut(&mut rand::rngs::StdRng) -> (u64, T)>(
    seed: u64,
    init: (u64, T),
    mut draw: F,
) -> Vec<T> {
    const STABLE_DRAWS: u32 = 64;
    const MAX_DRAWS: u32 = 2048;
    let mut r = rng::rng(seed);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = Vec::new();
    seen.insert(init.0);
    out.push(init.1);
    let mut stale = 0u32;
    let mut draws = 0u32;
    while stale < STABLE_DRAWS && draws < MAX_DRAWS {
        let (bits, v) = draw(&mut r);
        draws += 1;
        if seen.insert(bits) {
            out.push(v);
            stale = 0;
        } else {
            stale += 1;
        }
    }
    out
}

/// Build a systematic state corpus for `alg` on `topo`: the full
/// corruption lattice when its size fits under `cfg.max_states` (domains
/// discovered by sampling `corrupt_local`/`corrupt_edge`), otherwise the
/// initial state, seeded `corrupt_all` sweeps, single-site corruptions
/// and one-step successors, deduplicated via the packed codec.
pub fn build_corpus<A: StateCodec>(alg: &A, topo: &Topology, cfg: &AnalysisConfig) -> Corpus<A> {
    let codec = Codec::new(alg, topo);
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut states: Vec<SystemState<A>> = Vec::new();
    let mut push = |states: &mut Vec<SystemState<A>>, s: SystemState<A>| {
        if states.len() >= cfg.max_states {
            return;
        }
        if seen.insert(codec.encode(&s)) {
            states.push(s);
        }
    };

    // Per-position corruptible domains, deduplicated by encoded bits.
    let local_domains: Vec<Vec<A::Local>> = topo
        .processes()
        .map(|p| {
            let init = alg.init_local(topo, p);
            let init_bits = alg.encode_local(topo, p, &init);
            sample_domain(
                rng::subseed(cfg.seed, 0x10 + p.index() as u64),
                (init_bits, init),
                |r| {
                    let v = alg.corrupt_local(r, topo, p);
                    (alg.encode_local(topo, p, &v), v)
                },
            )
        })
        .collect();
    let edge_domains: Vec<Vec<A::Edge>> = (0..topo.edge_count())
        .map(|i| {
            let e = EdgeId(i);
            let init = alg.init_edge(topo, e);
            let init_bits = alg.encode_edge(topo, e, &init);
            sample_domain(
                rng::subseed(cfg.seed, 0x8000 + i as u64),
                (init_bits, init),
                |r| {
                    let v = alg.corrupt_edge(r, topo, e);
                    (alg.encode_edge(topo, e, &v), v)
                },
            )
        })
        .collect();

    // Lattice size, saturated far above the cap.
    let mut lattice: u128 = 1;
    for d in local_domains
        .iter()
        .map(Vec::len)
        .chain(edge_domains.iter().map(Vec::len))
    {
        lattice = lattice.saturating_mul(d as u128).min(u128::from(u64::MAX));
    }

    let initial = SystemState::initial(alg, topo);
    if lattice <= cfg.max_states as u128 {
        // Enumerate the full corruption lattice with a mixed-radix
        // odometer over (locals, edges).
        let n = topo.len();
        let m = topo.edge_count();
        let mut digits = vec![0usize; n + m];
        push(&mut states, initial);
        'odometer: loop {
            let locals: Vec<A::Local> = (0..n)
                .map(|i| local_domains[i][digits[i]].clone())
                .collect();
            let edges: Vec<A::Edge> = (0..m)
                .map(|i| edge_domains[i][digits[n + i]].clone())
                .collect();
            push(&mut states, SystemState::from_parts(topo, locals, edges));
            for (i, d) in digits.iter_mut().enumerate() {
                let radix = if i < n {
                    local_domains[i].len()
                } else {
                    edge_domains[i - n].len()
                };
                *d += 1;
                if *d < radix {
                    continue 'odometer;
                }
                *d = 0;
            }
            break;
        }
        return Corpus {
            states,
            exhaustive: true,
        };
    }

    // Sampled corpus: initial + single-site corruptions + corrupt_all
    // sweeps + one-step successors.
    push(&mut states, initial.clone());
    for p in topo.processes() {
        for v in &local_domains[p.index()] {
            let mut s = initial.clone();
            *s.local_mut(p) = v.clone();
            push(&mut states, s);
        }
    }
    for (i, dom) in edge_domains.iter().enumerate() {
        for v in dom {
            let mut s = initial.clone();
            *s.edge_mut(EdgeId(i)) = v.clone();
            push(&mut states, s);
        }
    }
    let mut sweep = 0u64;
    while states.len() < cfg.max_states && sweep < 4 * cfg.max_states as u64 {
        let mut s = initial.clone();
        s.corrupt_all(
            alg,
            topo,
            &mut rng::rng(rng::subseed(cfg.seed, 0xC0 + sweep)),
        );
        push(&mut states, s);
        sweep += 1;
    }
    // One-step successors of an expansion-window prefix, so values that
    // are reachable but not corruptible (e.g. depths the commands compute)
    // enter the corpus too. Traced (permissive) views: ill-behaved
    // fixtures must yield certifier witnesses, not panics.
    let scratch = AccessLog::new();
    let mut i = 0;
    while i < states.len().min(cfg.successor_states) && states.len() < cfg.max_states {
        for p in topo.processes() {
            let succs: Vec<SystemState<A>> = instances(alg, topo, p)
                .into_iter()
                .filter_map(|a| {
                    let view = View::traced(topo, &states[i], p, true, &scratch);
                    alg.enabled(&view, a).then(|| {
                        let mut s = states[i].clone();
                        let writes = alg.execute(&view, a);
                        apply_writes(topo, &mut s, p, &writes);
                        s
                    })
                })
                .collect();
            scratch.clear();
            for s in succs {
                push(&mut states, s);
            }
        }
        i += 1;
    }
    Corpus {
        states,
        exhaustive: false,
    }
}

/// Every action instance of one process: global kinds once, per-neighbor
/// kinds once per adjacency slot (the engine's enumeration order).
pub fn instances<A: Algorithm>(alg: &A, topo: &Topology, p: ProcessId) -> Vec<ActionId> {
    let mut out = Vec::new();
    for (k, kind) in alg.kinds().iter().enumerate() {
        if kind.per_neighbor {
            for s in 0..topo.degree(p) {
                out.push(ActionId::at_slot(k, s));
            }
        } else {
            out.push(ActionId::global(k));
        }
    }
    out
}

/// Apply a write set to a state, skipping writes that violate the write
/// contract (corpus building and equivariance checking must not panic on
/// ill-behaved fixtures; the locality certifier reports those writes).
fn apply_writes<A: Algorithm>(
    topo: &Topology,
    state: &mut SystemState<A>,
    pid: ProcessId,
    writes: &[Write<A>],
) {
    for w in writes {
        match w {
            Write::Local(l) => *state.local_mut(pid) = l.clone(),
            Write::Edge { neighbor, value } => {
                if let Some(e) = topo.edge_between(pid, *neighbor) {
                    *state.edge_mut(e) = value.clone();
                }
            }
        }
    }
}

/// Field-wise write-list equality ([`Write`] deliberately has no
/// `PartialEq`: the engine never compares writes).
fn writes_eq<A: Algorithm>(a: &[Write<A>], b: &[Write<A>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Write::Local(l), Write::Local(r)) => l == r,
            (
                Write::Edge {
                    neighbor: ln,
                    value: lv,
                },
                Write::Edge {
                    neighbor: rn,
                    value: rv,
                },
            ) => ln == rn && lv == rv,
            _ => false,
        })
}

/// Apply a topology automorphism to a whole state: position `p` moves to
/// `π(p)` and ids embedded in values are rewritten through the codec's
/// permute hooks.
pub fn permute_state<A: StateCodec>(
    alg: &A,
    topo: &Topology,
    perm: &Perm,
    s: &SystemState<A>,
) -> SystemState<A> {
    let mut locals = s.locals().to_vec();
    for p in topo.processes() {
        locals[perm.apply(p).index()] = alg.permute_local(topo, perm, p, s.local(p));
    }
    let mut edges = s.edges().to_vec();
    for i in 0..topo.edge_count() {
        let e = EdgeId(i);
        edges[perm.apply_edge(e).index()] = alg.permute_edge(topo, perm, e, s.edge(e));
    }
    SystemState::from_parts(topo, locals, edges)
}

/// Truncated Debug rendering of a state for violation witnesses.
fn fmt_state<A: Algorithm>(s: &SystemState<A>) -> String {
    let mut out = format!("{s:?}");
    if out.len() > 240 {
        out.truncate(240);
        out.push('…');
    }
    out
}

fn fmt_perm(topo: &Topology, perm: &Perm) -> String {
    let map: Vec<usize> = (0..topo.len())
        .map(|i| perm.apply(ProcessId(i)).index())
        .collect();
    format!("{map:?}")
}

/// A read that escapes the closed neighborhood, as a violation detail.
fn read_violation(topo: &Topology, p: ProcessId, access: ReadAccess) -> Option<String> {
    match access {
        ReadAccess::OwnLocal | ReadAccess::Needs => None,
        ReadAccess::Local(q) => (q != p && !topo.are_neighbors(p, q)).then(|| {
            format!(
                "read local of {q} at distance {} (outside the closed neighborhood)",
                topo.distance(p, q)
            )
        }),
        ReadAccess::Edge(q) => {
            (!topo.are_neighbors(p, q)).then(|| format!("read edge towards non-neighbor {q}"))
        }
    }
}

/// The full output of [`analyze`]: inferred footprints plus the four
/// certifier verdicts, with timing.
#[derive(Clone, Debug)]
pub struct ContractReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Topology name.
    pub topology: String,
    /// Corpus size.
    pub corpus_states: usize,
    /// Whether the corpus was the complete corruption lattice.
    pub corpus_exhaustive: bool,
    /// Per-kind inferred footprints.
    pub footprints: Vec<KindFootprint>,
    /// The malicious pseudo-action's inferred footprint.
    pub malicious: AccessSummary,
    /// Certifier 1: reads ⊆ closed neighborhood, writes ⊆ local +
    /// incident edges, malicious writes within capability.
    pub locality: CertifierVerdict,
    /// Certifier 2: `enabled`/`execute` are functions of the view,
    /// `malicious_writes` of (view, rng).
    pub purity: CertifierVerdict,
    /// Certifier 3: the `respects_symmetry` decision.
    pub equivariance: EquivarianceReport,
    /// Certifier 4: the commutativity matrix.
    pub independence: IndependenceMatrix,
    /// Corpus construction wall-clock (ms).
    pub corpus_ms: f64,
    /// Locality + purity + footprint pass wall-clock (ms).
    pub contracts_ms: f64,
    /// Equivariance pass wall-clock (ms).
    pub equivariance_ms: f64,
}

impl ContractReport {
    /// Whether every certifier passed: locality and purity hold and the
    /// equivariance decision is consistent with the declaration.
    pub fn certified(&self) -> bool {
        self.locality.ok() && self.purity.ok() && self.equivariance.matches_declaration()
    }
}

/// Run the full contract analysis of `alg` on `topo`; see the
/// [module docs](self).
pub fn analyze<A: StateCodec>(alg: &A, topo: &Topology, cfg: &AnalysisConfig) -> ContractReport {
    let t0 = Instant::now();
    let corpus = build_corpus(alg, topo, cfg);
    let corpus_ms = t0.elapsed().as_secs_f64() * 1e3;

    let kinds = alg.kinds();
    let mut footprints: Vec<KindFootprint> = kinds
        .iter()
        .map(|k| KindFootprint {
            name: k.name.to_string(),
            per_neighbor: k.per_neighbor,
            guard: AccessSummary::default(),
            command: AccessSummary::default(),
            guard_evals: 0,
            fires: 0,
        })
        .collect();
    let mut malicious = AccessSummary::default();
    let mut locality = CertifierVerdict::default();
    let mut purity = CertifierVerdict::default();
    let log = AccessLog::new();
    let mut mal_counter = 0u64;

    let t1 = Instant::now();
    for state in &corpus.states {
        for needs in [true, false] {
            for p in topo.processes() {
                let view = View::traced(topo, state, p, needs, &log);
                for action in instances(alg, topo, p) {
                    let name = kinds[action.kind].name;
                    log.clear();
                    let fired = alg.enabled(&view, action);
                    for r in log.take() {
                        footprints[action.kind].guard.absorb_read(topo, p, r);
                        locality.checked += 1;
                        if let Some(detail) = read_violation(topo, p, r) {
                            locality.record(Violation {
                                action: name.to_string(),
                                pid: p,
                                detail: format!("guard {detail}"),
                                state: fmt_state(state),
                            });
                        }
                    }
                    footprints[action.kind].guard_evals += 1;
                    // Purity differential: the guard must be a function
                    // of the view.
                    let again = alg.enabled(&view, action);
                    log.clear();
                    purity.checked += 1;
                    if fired != again {
                        purity.record(Violation {
                            action: name.to_string(),
                            pid: p,
                            detail: format!(
                                "guard changed value on re-evaluation of the same view \
                                 ({fired} then {again}) — hidden state or randomness"
                            ),
                            state: fmt_state(state),
                        });
                    }
                    if fired {
                        footprints[action.kind].fires += 1;
                        log.clear();
                        let writes = alg.execute(&view, action);
                        for r in log.take() {
                            footprints[action.kind].command.absorb_read(topo, p, r);
                            locality.checked += 1;
                            if let Some(detail) = read_violation(topo, p, r) {
                                locality.record(Violation {
                                    action: name.to_string(),
                                    pid: p,
                                    detail: format!("command {detail}"),
                                    state: fmt_state(state),
                                });
                            }
                        }
                        for w in &writes {
                            let target = match w {
                                Write::Local(_) => None,
                                Write::Edge { neighbor, .. } => Some(*neighbor),
                            };
                            footprints[action.kind]
                                .command
                                .absorb_write(topo, p, target);
                            locality.checked += 1;
                            if let Some(v) = check_write(alg, topo, p, false, w) {
                                locality.record(Violation {
                                    action: name.to_string(),
                                    pid: p,
                                    detail: format!("command {v}"),
                                    state: fmt_state(state),
                                });
                            }
                        }
                        // Command purity differential.
                        let again = alg.execute(&view, action);
                        log.clear();
                        purity.checked += 1;
                        if !writes_eq(&writes, &again) {
                            purity.record(Violation {
                                action: name.to_string(),
                                pid: p,
                                detail: "command produced a different write set on \
                                         re-evaluation of the same view"
                                    .to_string(),
                                state: fmt_state(state),
                            });
                        }
                    }
                }
                // The malicious pseudo-action (the engine evaluates it
                // with needs = false; sample several rng streams).
                if !needs {
                    for _ in 0..cfg.malicious_samples {
                        let seed = rng::subseed(cfg.seed ^ 0x3A11C0, mal_counter);
                        mal_counter += 1;
                        log.clear();
                        let writes = alg.malicious_writes(&view, &mut rng::rng(seed));
                        for r in log.take() {
                            malicious.absorb_read(topo, p, r);
                            locality.checked += 1;
                            if let Some(detail) = read_violation(topo, p, r) {
                                locality.record(Violation {
                                    action: "malicious".to_string(),
                                    pid: p,
                                    detail: format!("malicious step {detail}"),
                                    state: fmt_state(state),
                                });
                            }
                        }
                        for w in &writes {
                            let target = match w {
                                Write::Local(_) => None,
                                Write::Edge { neighbor, .. } => Some(*neighbor),
                            };
                            malicious.absorb_write(topo, p, target);
                            locality.checked += 1;
                            if let Some(v) = check_write(alg, topo, p, true, w) {
                                locality.record(Violation {
                                    action: "malicious".to_string(),
                                    pid: p,
                                    detail: v.to_string(),
                                    state: fmt_state(state),
                                });
                            }
                        }
                        // Determinism in the rng stream.
                        let again = alg.malicious_writes(&view, &mut rng::rng(seed));
                        log.clear();
                        purity.checked += 1;
                        if !writes_eq(&writes, &again) {
                            purity.record(Violation {
                                action: "malicious".to_string(),
                                pid: p,
                                detail: "malicious_writes is not a function of (view, rng)"
                                    .to_string(),
                                state: fmt_state(state),
                            });
                        }
                    }
                }
            }
        }
    }
    let contracts_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let equivariance = certify_equivariance(alg, topo, &corpus, cfg.equivariance_cap);
    let equivariance_ms = t2.elapsed().as_secs_f64() * 1e3;

    let independence = derive_independence(&footprints, &malicious, locality.ok());

    ContractReport {
        algorithm: alg.name().to_string(),
        topology: topo.name().to_string(),
        corpus_states: corpus.states.len(),
        corpus_exhaustive: corpus.exhaustive,
        footprints,
        malicious,
        locality,
        purity,
        equivariance,
        independence,
        corpus_ms,
        contracts_ms,
        equivariance_ms,
    }
}

/// Decide equivariance by step-vs-automorphism commutation over the
/// corpus: for every state `s`, automorphism π and move `m`,
/// `enabled(s, m) == enabled(π·s, π·m)` and `π·(s after m) == (π·s) after
/// π·m`. First failure refutes with a concrete witness.
fn certify_equivariance<A: StateCodec>(
    alg: &A,
    topo: &Topology,
    corpus: &Corpus<A>,
    cap: usize,
) -> EquivarianceReport {
    let declared = alg.respects_symmetry();
    let group = SymmetryGroup::for_topology(topo);
    if group.is_trivial() {
        return EquivarianceReport {
            declared,
            inferred: declared,
            decidable: false,
            checked: 0,
            witness: None,
        };
    }
    let mut checked = 0u64;
    // Traced (permissive) views so ill-behaved fixtures are refuted
    // rather than tripping the untraced adjacency assertion.
    let scratch = AccessLog::new();
    for state in corpus.states.iter().take(cap) {
        for perm in &group.perms()[1..] {
            let permuted = permute_state(alg, topo, perm, state);
            for p in topo.processes() {
                for action in instances(alg, topo, p) {
                    let m = Move { pid: p, action };
                    let pm = perm.permute_move(topo, m);
                    scratch.clear();
                    let v = View::traced(topo, state, p, true, &scratch);
                    let pv = View::traced(topo, &permuted, pm.pid, true, &scratch);
                    let e1 = alg.enabled(&v, action);
                    let e2 = alg.enabled(&pv, pm.action);
                    checked += 1;
                    let name = alg.kinds()[action.kind].name;
                    if e1 != e2 {
                        return EquivarianceReport {
                            declared,
                            inferred: false,
                            decidable: true,
                            checked,
                            witness: Some(format!(
                                "enabled({name} at {p}) = {e1} but enabled({name} at {}) = {e2} \
                                 under automorphism {}; state {}",
                                pm.pid,
                                fmt_perm(topo, perm),
                                fmt_state(state)
                            )),
                        };
                    }
                    if e1 {
                        let mut after = state.clone();
                        apply_writes(topo, &mut after, p, &alg.execute(&v, action));
                        let after_permuted = permute_state(alg, topo, perm, &after);
                        let mut permuted_after = permuted.clone();
                        apply_writes(
                            topo,
                            &mut permuted_after,
                            pm.pid,
                            &alg.execute(&pv, pm.action),
                        );
                        if after_permuted != permuted_after {
                            return EquivarianceReport {
                                declared,
                                inferred: false,
                                decidable: true,
                                checked,
                                witness: Some(format!(
                                    "executing {name} at {p} then permuting differs from \
                                     permuting then executing {name} at {} under automorphism {}; \
                                     state {}",
                                    pm.pid,
                                    fmt_perm(topo, perm),
                                    fmt_state(state)
                                )),
                            };
                        }
                    }
                }
            }
        }
    }
    EquivarianceReport {
        declared,
        inferred: true,
        decidable: checked > 0,
        checked,
        witness: None,
    }
}

/// Effective variable sets of one kind, guard ∪ command.
#[derive(Clone, Copy, Default)]
struct EffectiveAccess {
    r_own: bool,
    r_neighbor: bool,
    r_edge: bool,
    w_local: bool,
    w_edge: bool,
}

impl EffectiveAccess {
    fn of_kind(f: &KindFootprint) -> Self {
        EffectiveAccess {
            r_own: f.guard.reads_own_local || f.command.reads_own_local,
            r_neighbor: f.guard.reads_neighbor_local || f.command.reads_neighbor_local,
            r_edge: f.guard.reads_edge || f.command.reads_edge,
            w_local: f.command.writes_local,
            w_edge: f.command.writes_edge,
        }
    }

    fn of_malicious(m: &AccessSummary) -> Self {
        EffectiveAccess {
            r_own: m.reads_own_local,
            r_neighbor: m.reads_neighbor_local,
            r_edge: m.reads_edge,
            w_local: m.writes_local,
            w_edge: m.writes_edge,
        }
    }
}

/// Whether instances of `a` and `b` at distance `d` can touch a common
/// variable, given the certified locality bounds: locals intersect at
/// d = 0 (own) or d = 1 (a writes its local which b's guard reads);
/// incident-edge sets intersect only at d ≤ 1 (the shared edge {p, q}).
fn conflicts(a: &EffectiveAccess, b: &EffectiveAccess, d: usize) -> bool {
    let write_read = |x: &EffectiveAccess, y: &EffectiveAccess| {
        (x.w_local && ((d == 0 && y.r_own) || (d == 1 && y.r_neighbor)))
            || (x.w_edge && y.r_edge && d <= 1)
    };
    write_read(a, b)
        || write_read(b, a)
        || (a.w_local && b.w_local && d == 0)
        || (a.w_edge && b.w_edge && d <= 1)
}

/// Derive the independence matrix from the inferred footprints (plus the
/// malicious pseudo-action as the last row/column).
fn derive_independence(
    footprints: &[KindFootprint],
    malicious: &AccessSummary,
    sound: bool,
) -> IndependenceMatrix {
    let mut kinds: Vec<String> = footprints.iter().map(|f| f.name.clone()).collect();
    kinds.push("malicious".to_string());
    let mut effs: Vec<EffectiveAccess> = footprints.iter().map(EffectiveAccess::of_kind).collect();
    effs.push(EffectiveAccess::of_malicious(malicious));
    let independent = effs
        .iter()
        .map(|a| {
            effs.iter()
                .map(|b| {
                    let mut cell = [false; INDEPENDENCE_DISTANCES];
                    for (d, slot) in cell.iter_mut().enumerate() {
                        *slot = !conflicts(a, b, d);
                    }
                    cell
                })
                .collect()
        })
        .collect();
    IndependenceMatrix {
        kinds,
        independent,
        sound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;
    use crate::toy::{ToyDiners, TOY_ENTER, TOY_JOIN};

    #[test]
    fn access_log_records_every_view_accessor() {
        let topo = Topology::line(3);
        let s: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &topo);
        let log = AccessLog::new();
        let v = View::traced(&topo, &s, ProcessId(1), true, &log);
        let _ = v.local();
        let _ = v.needs();
        let _ = v.neighbor_local(ProcessId(0));
        let _ = v.edge_to(ProcessId(2));
        assert_eq!(
            log.take(),
            vec![
                ReadAccess::OwnLocal,
                ReadAccess::Needs,
                ReadAccess::Local(ProcessId(0)),
                ReadAccess::Edge(ProcessId(2)),
            ]
        );
        // Drained: a second take is empty.
        assert!(log.take().is_empty());
    }

    #[test]
    fn untraced_views_record_nothing() {
        let topo = Topology::line(2);
        let s: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &topo);
        let v = View::new(&topo, &s, ProcessId(0), true);
        let _ = v.local();
        let _ = v.needs();
        // Nothing to assert beyond "does not panic": the untraced view
        // has no log. The traced/untraced split is re-verified by the
        // engine equivalence suites (tracing is observer-effect-free).
        assert_eq!(*v.local(), crate::algorithm::Phase::Thinking);
    }

    #[test]
    fn check_write_classifies_adjacency_and_capability() {
        let topo = Topology::line(3);
        let p0 = ProcessId(0);
        let ok: Write<ToyDiners> = Write::Edge {
            neighbor: ProcessId(1),
            value: (),
        };
        assert_eq!(check_write(&ToyDiners, &topo, p0, false, &ok), None);
        let far: Write<ToyDiners> = Write::Edge {
            neighbor: ProcessId(2),
            value: (),
        };
        assert_eq!(
            check_write(&ToyDiners, &topo, p0, false, &far),
            Some(WriteViolation::NonNeighborEdge {
                pid: p0,
                neighbor: ProcessId(2)
            })
        );
        // Toy's default capability allows no malicious edge writes.
        assert_eq!(
            check_write(&ToyDiners, &topo, p0, true, &ok),
            Some(WriteViolation::CapabilityExceeded {
                pid: p0,
                neighbor: ProcessId(1)
            })
        );
        let local: Write<ToyDiners> = Write::Local(crate::algorithm::Phase::Hungry);
        assert_eq!(check_write(&ToyDiners, &topo, p0, true, &local), None);
    }

    #[test]
    fn toy_corpus_is_the_exhaustive_phase_lattice() {
        let topo = Topology::line(3);
        let corpus = build_corpus(&ToyDiners, &topo, &AnalysisConfig::quick());
        // 3 phases ^ 3 processes, unit edges.
        assert!(corpus.exhaustive);
        assert_eq!(corpus.states.len(), 27);
    }

    #[test]
    fn corpus_is_deterministic_in_the_seed() {
        let topo = Topology::ring(4);
        let cfg = AnalysisConfig::quick();
        let a = build_corpus(&crate::toy::ToyDiners, &topo, &cfg);
        let b = build_corpus(&crate::toy::ToyDiners, &topo, &cfg);
        assert_eq!(a.states.len(), b.states.len());
        for (x, y) in a.states.iter().zip(&b.states) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn toy_is_certified_except_equivariance() {
        let topo = Topology::ring(5);
        let report = analyze(&ToyDiners, &topo, &AnalysisConfig::quick());
        assert!(report.locality.ok(), "{:?}", report.locality.witnesses);
        assert!(report.purity.ok(), "{:?}", report.purity.witnesses);
        // The pid tie-break must be rediscovered with a witness.
        assert!(report.equivariance.decidable);
        assert!(!report.equivariance.inferred);
        assert!(!report.equivariance.declared);
        assert!(report.equivariance.matches_declaration());
        let w = report.equivariance.witness.as_deref().unwrap();
        assert!(w.contains("enter"), "witness should name the action: {w}");
        assert!(report.certified());
    }

    #[test]
    fn toy_footprints_match_the_source() {
        let topo = Topology::ring(5);
        let report = analyze(&ToyDiners, &topo, &AnalysisConfig::quick());
        let join = &report.footprints[TOY_JOIN];
        assert!(join.guard.reads_own_local && join.guard.reads_needs);
        assert!(!join.guard.reads_neighbor_local && !join.guard.reads_edge);
        assert!(join.command.writes_local && !join.command.writes_edge);
        let enter = &report.footprints[TOY_ENTER];
        assert!(enter.guard.reads_neighbor_local);
        assert_eq!(enter.guard.read_radius, 1);
        assert_eq!(enter.command.write_radius, 0);
        // Malicious default: corrupts the local only, reads nothing.
        assert!(report.malicious.writes_local && !report.malicious.writes_edge);
    }

    #[test]
    fn toy_independence_matrix_has_the_expected_shape() {
        let topo = Topology::ring(5);
        let report = analyze(&ToyDiners, &topo, &AnalysisConfig::quick());
        let m = &report.independence;
        assert!(m.sound);
        assert_eq!(m.kinds.len(), 4, "3 kinds + malicious");
        // Same process: enter writes the local that enter reads.
        assert!(!m.independent_at(TOY_ENTER, TOY_ENTER, 0));
        // Neighbors: enter reads neighbor locals which enter writes.
        assert!(!m.independent_at(TOY_ENTER, TOY_ENTER, 1));
        // Distance ≥ 2: footprints disjoint.
        assert!(m.independent_at(TOY_ENTER, TOY_ENTER, 2));
        // join never reads neighbors: independent of a neighbor's join.
        assert!(m.independent_at(TOY_JOIN, TOY_JOIN, 1));
        let d = m.density();
        assert!(d > 0.0 && d < 1.0, "density {d}");
        let json = m.to_json();
        assert!(json.contains("\"kinds\"") && json.contains("\"pairs\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn writes_eq_is_fieldwise() {
        let a: Vec<Write<ToyDiners>> = vec![Write::Local(crate::algorithm::Phase::Hungry)];
        let b: Vec<Write<ToyDiners>> = vec![Write::Local(crate::algorithm::Phase::Hungry)];
        let c: Vec<Write<ToyDiners>> = vec![Write::Local(crate::algorithm::Phase::Eating)];
        assert!(writes_eq(&a, &b));
        assert!(!writes_eq(&a, &c));
        assert!(!writes_eq(&a, &[]));
    }

    #[test]
    fn permute_state_moves_positions() {
        let topo = Topology::ring(4);
        let mut s: SystemState<ToyDiners> = SystemState::initial(&ToyDiners, &topo);
        *s.local_mut(ProcessId(0)) = crate::algorithm::Phase::Eating;
        let group = SymmetryGroup::for_topology(&topo);
        let rot = group
            .perms()
            .iter()
            .find(|p| {
                p.apply(ProcessId(0)) == ProcessId(1) && p.apply(ProcessId(1)) == ProcessId(2)
            })
            .unwrap();
        let ps = permute_state(&ToyDiners, &topo, rot, &s);
        assert_eq!(*ps.local(ProcessId(1)), crate::algorithm::Phase::Eating);
        assert_eq!(*ps.local(ProcessId(0)), crate::algorithm::Phase::Thinking);
    }
}
