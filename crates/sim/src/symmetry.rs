//! Topology automorphisms and symmetry-reduced state canonicalization.
//!
//! Ring states come in rotation/reflection orbits of size up to `2n`; the
//! plain explorer stores every member of every orbit. When the algorithm
//! is *equivariant* — permuting a state by a topology automorphism and
//! taking a step commute ([`StateCodec::respects_symmetry`]) — it suffices
//! to store one canonical representative per orbit: if the canonical state
//! satisfies a symmetric safety predicate, so does every orbit member, and
//! every successor of an orbit member is (up to the same symmetry) a
//! successor of the representative.
//!
//! # Soundness
//!
//! Orbit dedup is sound for any *subgroup* of the full automorphism group
//! (a subgroup partitions states into finer orbits — we may store more
//! representatives than strictly necessary, never fewer distinct
//! behaviours). [`SymmetryGroup::for_topology`] therefore enumerates only
//! the groups we can write down from the constructor family
//! ([`Family`]): the dihedral group for rings, the reflection for lines,
//! the dihedral group on the leaf cycle for stars (a subgroup of the full
//! `(n-1)!` leaf symmetries), and the identity elsewhere. Three more
//! conditions are required and enforced/documented at the call site:
//!
//! * the algorithm is equivariant (checked via
//!   [`StateCodec::respects_symmetry`], default `false`);
//! * the automorphism fixes the exploration context — the `needs` mask and
//!   `health` vector ([`SymmetryGroup::stabilizing`] filters to that
//!   stabilizer subgroup);
//! * the safety predicate is symmetric (invariant under the group). This
//!   cannot be checked mechanically for a closure; it is part of the
//!   `Reduction::Symmetry` contract and holds for all predicates in this
//!   repo (exclusion, dead-eater, "nobody eats" are per-edge/per-process
//!   properties quantified over the whole graph).
//!
//! # Canonical form
//!
//! [`canonicalize_into`] computes, field-wise in packed space, the
//! lexicographically least packed word vector over the orbit
//! `{π·s : π ∈ G}`, and reports *which* π achieved it. The explorer stores
//! the winning permutation per interned state so a counterexample trace
//! through canonical states can be rehydrated into a concrete trace of
//! the original (unpermuted) system — see `explore.rs`.

use crate::algorithm::Move;
use crate::codec::{Codec, StateCodec};
use crate::fault::Health;
use crate::graph::{EdgeId, Family, ProcessId, Topology};

/// A topology automorphism: a relabeling of processes that maps edges to
/// edges. Also carries the induced edge relabeling, precomputed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Perm {
    /// `map[p] = π(p)`.
    map: Vec<ProcessId>,
    /// `edge_map[e] = π(e)` — the edge between the images of `e`'s
    /// endpoints.
    edge_map: Vec<EdgeId>,
}

impl Perm {
    /// The identity permutation on `topo`.
    pub fn identity(topo: &Topology) -> Perm {
        Perm {
            map: topo.processes().collect(),
            edge_map: (0..topo.edge_count()).map(EdgeId).collect(),
        }
    }

    /// Build a permutation from `map[p] = π(p)`, verifying it is an
    /// automorphism of `topo` (a bijection mapping every edge to an edge).
    /// Returns `None` otherwise.
    pub fn from_map(topo: &Topology, map: Vec<ProcessId>) -> Option<Perm> {
        if map.len() != topo.len() {
            return None;
        }
        let mut seen = vec![false; topo.len()];
        for &q in &map {
            if q.index() >= topo.len() || seen[q.index()] {
                return None;
            }
            seen[q.index()] = true;
        }
        let mut edge_map = Vec::with_capacity(topo.edge_count());
        for &(a, b) in topo.edges() {
            let e = topo.edge_between(map[a.index()], map[b.index()])?;
            edge_map.push(e);
        }
        Some(Perm { map, edge_map })
    }

    /// `π(p)`.
    #[inline]
    pub fn apply(&self, p: ProcessId) -> ProcessId {
        self.map[p.index()]
    }

    /// `π(e)`.
    #[inline]
    pub fn apply_edge(&self, e: EdgeId) -> EdgeId {
        self.edge_map[e.index()]
    }

    /// Number of processes this permutation acts on.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, p)| p.index() == i)
    }

    /// Whether the map is empty (never true for a valid topology).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The inverse permutation `π⁻¹`.
    pub fn inverse(&self, topo: &Topology) -> Perm {
        let mut map = vec![ProcessId(0); self.map.len()];
        for (i, &q) in self.map.iter().enumerate() {
            map[q.index()] = ProcessId(i);
        }
        Perm::from_map(topo, map).expect("inverse of an automorphism is an automorphism")
    }

    /// Composition `self ∘ other`: `p ↦ self(other(p))`.
    pub fn compose(&self, topo: &Topology, other: &Perm) -> Perm {
        let map = other.map.iter().map(|&q| self.apply(q)).collect();
        Perm::from_map(topo, map).expect("composition of automorphisms is an automorphism")
    }

    /// Rewrite a concrete move through this permutation: the actor becomes
    /// `π(pid)`, and a per-neighbor slot is remapped so it still denotes
    /// the *image* of the original neighbor (adjacency lists are sorted,
    /// so the slot number itself is not invariant).
    pub fn permute_move(&self, topo: &Topology, m: Move) -> Move {
        let pid = self.apply(m.pid);
        let slot = m.action.slot.map(|s| {
            let q = topo.neighbors(m.pid)[s];
            topo.slot_of(pid, self.apply(q))
        });
        Move {
            pid,
            action: crate::algorithm::ActionId {
                kind: m.action.kind,
                slot,
            },
        }
    }

    /// Whether this permutation fixes a per-process vector (`v[π(p)] ==
    /// v[p]` for all `p`): required of the `needs` mask and `health`
    /// vector for the permutation to be a symmetry of the *search*, not
    /// just the graph.
    pub fn fixes<T: PartialEq>(&self, v: &[T]) -> bool {
        self.map
            .iter()
            .enumerate()
            .all(|(i, &q)| v[i] == v[q.index()])
    }
}

/// A set of automorphisms of one topology, identity first. Not
/// necessarily the full automorphism group — any subgroup gives sound
/// (if coarser) orbit dedup.
#[derive(Clone, Debug)]
pub struct SymmetryGroup {
    perms: Vec<Perm>,
}

impl SymmetryGroup {
    /// The trivial group (identity only).
    pub fn identity(topo: &Topology) -> SymmetryGroup {
        SymmetryGroup {
            perms: vec![Perm::identity(topo)],
        }
    }

    /// The automorphism subgroup known for `topo`'s constructor family:
    ///
    /// | family | group | order |
    /// |---|---|---|
    /// | ring(n) | dihedral (rotations + reflections) | 2n |
    /// | line(n) | end-to-end reflection | 2 |
    /// | star(n) | dihedral on the leaf cycle `1..n` | 2(n−1) |
    /// | others | identity | 1 |
    ///
    /// Small degenerate cases (line(1), star(2), …) deduplicate to
    /// whatever distinct permutations exist; the identity is always
    /// element 0.
    pub fn for_topology(topo: &Topology) -> SymmetryGroup {
        let n = topo.len();
        let mut maps: Vec<Vec<ProcessId>> = Vec::new();
        match topo.family() {
            Family::Ring => {
                for k in 0..n {
                    maps.push((0..n).map(|p| ProcessId((p + k) % n)).collect());
                    maps.push((0..n).map(|p| ProcessId((k + n - p) % n)).collect());
                }
            }
            Family::Line => {
                maps.push((0..n).map(|p| ProcessId(n - 1 - p)).collect());
            }
            Family::Star if n >= 3 => {
                // Hub 0 fixed; leaves 1..n permuted like a ring of n-1.
                let l = n - 1;
                let leaf = |x: usize| ProcessId(1 + x);
                for k in 0..l {
                    let mut rot = vec![ProcessId(0)];
                    rot.extend((0..l).map(|x| leaf((x + k) % l)));
                    maps.push(rot);
                    let mut refl = vec![ProcessId(0)];
                    refl.extend((0..l).map(|x| leaf((k + l - x) % l)));
                    maps.push(refl);
                }
            }
            _ => {}
        }
        let mut perms = vec![Perm::identity(topo)];
        for map in maps {
            let perm = Perm::from_map(topo, map)
                .expect("family generator must be an automorphism of its own topology");
            if !perms.contains(&perm) {
                perms.push(perm);
            }
        }
        SymmetryGroup { perms }
    }

    /// The stabilizer subgroup fixing the exploration context: keeps only
    /// permutations under which both the `needs` mask and the `health`
    /// vector are invariant. (A subgroup: identity fixes everything, and
    /// the fixing property is closed under composition and inverse.)
    pub fn stabilizing(&self, needs: &[bool], health: &[Health]) -> SymmetryGroup {
        let perms = self
            .perms
            .iter()
            .filter(|perm| perm.fixes(needs) && perm.fixes(health))
            .cloned()
            .collect();
        SymmetryGroup { perms }
    }

    /// The permutations, identity first.
    #[inline]
    pub fn perms(&self) -> &[Perm] {
        &self.perms
    }

    /// Group order (≥ 1).
    #[inline]
    pub fn order(&self) -> usize {
        self.perms.len()
    }

    /// Whether only the identity remains.
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.perms.len() == 1
    }
}

/// Apply permutation `perm` to the packed state `src`, writing the packed
/// result to `dst`: field `p` of the result is the (value-permuted) field
/// `π⁻¹(p)` of the source — equivalently, source field `p` lands at
/// `π(p)`. Works entirely in packed space; only fields whose *values*
/// embed process ids are round-tripped through the codec's permute hooks.
pub fn permute_packed<A: StateCodec>(
    codec: &Codec<'_, A>,
    perm: &Perm,
    src: &[u64],
    dst: &mut [u64],
) {
    let topo = codec.topology();
    dst.fill(0);
    for p in topo.processes() {
        let v = codec.get_local(src, p);
        let v = codec.alg().permute_local(topo, perm, p, &v);
        codec.set_local(dst, perm.apply(p), &v);
    }
    for i in 0..topo.edge_count() {
        let e = EdgeId(i);
        let v = codec.get_edge(src, e);
        let v = codec.alg().permute_edge(topo, perm, e, &v);
        codec.set_edge(dst, perm.apply_edge(e), &v);
    }
}

/// Canonicalize a packed state under `group`: writes the lexicographically
/// least permuted image into `canonical` and returns the index (into
/// `group.perms()`) of the permutation π achieving it, i.e.
/// `canonical = π · src`. `scratch` must be one stride long and is
/// clobbered. With the trivial group this is a copy and returns 0.
pub fn canonicalize_into<A: StateCodec>(
    codec: &Codec<'_, A>,
    group: &SymmetryGroup,
    src: &[u64],
    canonical: &mut [u64],
    scratch: &mut [u64],
) -> u32 {
    canonical.copy_from_slice(src);
    let mut best = 0u32;
    for (i, perm) in group.perms().iter().enumerate().skip(1) {
        permute_packed(codec, perm, src, scratch);
        if scratch[..] < canonical[..] {
            canonical.copy_from_slice(scratch);
            best = i as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ActionId, Phase, SystemState};
    use crate::graph::Topology;
    use crate::toy::ToyDiners;

    #[test]
    fn identity_group_for_unlisted_families() {
        for topo in [
            Topology::grid(3, 3),
            Topology::complete(4),
            Topology::binary_tree(7),
            Topology::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap(),
        ] {
            let g = SymmetryGroup::for_topology(&topo);
            assert!(g.is_trivial(), "{} should get the identity", topo.name());
            assert!(g.perms()[0].is_identity());
        }
    }

    #[test]
    fn ring_group_is_dihedral_of_order_2n() {
        for n in [3usize, 4, 5, 8] {
            let topo = Topology::ring(n);
            let g = SymmetryGroup::for_topology(&topo);
            assert_eq!(g.order(), 2 * n, "ring({n})");
            assert!(g.perms()[0].is_identity());
        }
    }

    #[test]
    fn line_group_is_reflection() {
        let topo = Topology::line(5);
        let g = SymmetryGroup::for_topology(&topo);
        assert_eq!(g.order(), 2);
        let r = &g.perms()[1];
        assert_eq!(r.apply(ProcessId(0)), ProcessId(4));
        assert_eq!(r.apply(ProcessId(2)), ProcessId(2));
    }

    #[test]
    fn star_group_is_dihedral_on_leaves() {
        let topo = Topology::star(5); // hub + 4 leaves
        let g = SymmetryGroup::for_topology(&topo);
        assert_eq!(g.order(), 8);
        for perm in g.perms() {
            assert_eq!(perm.apply(ProcessId(0)), ProcessId(0), "hub is fixed");
        }
    }

    #[test]
    fn from_map_rejects_non_automorphisms() {
        let topo = Topology::line(3);
        // Swapping an end with the middle breaks adjacency.
        let bad = vec![ProcessId(1), ProcessId(0), ProcessId(2)];
        assert!(Perm::from_map(&topo, bad).is_none());
        // Not a bijection.
        let dup = vec![ProcessId(0), ProcessId(0), ProcessId(2)];
        assert!(Perm::from_map(&topo, dup).is_none());
    }

    #[test]
    fn inverse_and_compose_are_consistent() {
        let topo = Topology::ring(6);
        let g = SymmetryGroup::for_topology(&topo);
        for perm in g.perms() {
            let inv = perm.inverse(&topo);
            assert!(perm.compose(&topo, &inv).is_identity());
            assert!(inv.compose(&topo, perm).is_identity());
        }
    }

    #[test]
    fn edge_map_tracks_endpoint_images() {
        let topo = Topology::ring(5);
        let g = SymmetryGroup::for_topology(&topo);
        for perm in g.perms() {
            for (i, &(a, b)) in topo.edges().iter().enumerate() {
                let e = perm.apply_edge(EdgeId(i));
                let (x, y) = topo.edges()[e.index()];
                let (pa, pb) = (perm.apply(a), perm.apply(b));
                assert!(
                    (x, y) == (pa, pb) || (x, y) == (pb, pa),
                    "edge image mismatch"
                );
            }
        }
    }

    #[test]
    fn stabilizer_filters_by_needs_and_health() {
        let topo = Topology::ring(4);
        let g = SymmetryGroup::for_topology(&topo);
        assert_eq!(g.order(), 8);
        // Only p0 needs: stabilizer must fix p0 — identity and the
        // reflection through p0.
        let needs = [true, false, false, false];
        let s = g.stabilizing(&needs, &[Health::Live; 4]);
        assert_eq!(s.order(), 2);
        for perm in s.perms() {
            assert_eq!(perm.apply(ProcessId(0)), ProcessId(0));
        }
        // A dead process likewise breaks rotations.
        let mut health = [Health::Live; 4];
        health[2] = Health::Dead;
        let s2 = g.stabilizing(&[true; 4], &health);
        assert_eq!(s2.order(), 2);
    }

    #[test]
    fn permute_move_remaps_slots() {
        let topo = Topology::ring(4);
        let g = SymmetryGroup::for_topology(&topo);
        // Rotation by 1.
        let rot = g
            .perms()
            .iter()
            .find(|p| {
                p.apply(ProcessId(0)) == ProcessId(1) && p.apply(ProcessId(1)) == ProcessId(2)
            })
            .unwrap();
        // p0's slot pointing at neighbor p1 must become p1's slot
        // pointing at neighbor p2.
        let slot01 = topo.slot_of(ProcessId(0), ProcessId(1));
        let m = Move {
            pid: ProcessId(0),
            action: ActionId::at_slot(0, slot01),
        };
        let pm = rot.permute_move(&topo, m);
        assert_eq!(pm.pid, ProcessId(1));
        let target = topo.neighbors(ProcessId(1))[pm.action.slot.unwrap()];
        assert_eq!(target, ProcessId(2));
    }

    #[test]
    fn canonicalization_collapses_ring_orbits() {
        // A single hungry process on a ring: all n placements are in one
        // rotation orbit, so all must canonicalize to the same packed word.
        let topo = Topology::ring(6);
        let codec = Codec::new(&ToyDiners, &topo);
        let group = SymmetryGroup::for_topology(&topo);
        let stride = codec.words();
        let mut canon = vec![0u64; stride];
        let mut scratch = vec![0u64; stride];
        let mut first: Option<Vec<u64>> = None;
        for p in topo.processes() {
            let mut s = SystemState::initial(&ToyDiners, &topo);
            *s.local_mut(p) = Phase::Hungry;
            let packed = codec.encode(&s);
            let pi = canonicalize_into(&codec, &group, &packed, &mut canon, &mut scratch);
            // canonical = π · src must hold.
            permute_packed(&codec, &group.perms()[pi as usize], &packed, &mut scratch);
            assert_eq!(scratch, canon, "winner permutation must reproduce canon");
            match &first {
                None => first = Some(canon.clone()),
                Some(f) => assert_eq!(&canon, f, "orbit member at {p} disagrees"),
            }
        }
    }

    #[test]
    fn canonicalization_with_identity_group_is_a_copy() {
        let topo = Topology::grid(2, 3);
        let codec = Codec::new(&ToyDiners, &topo);
        let group = SymmetryGroup::for_topology(&topo);
        let mut s = SystemState::initial(&ToyDiners, &topo);
        *s.local_mut(ProcessId(3)) = Phase::Eating;
        let packed = codec.encode(&s);
        let mut canon = vec![0u64; codec.words()];
        let mut scratch = vec![0u64; codec.words()];
        let pi = canonicalize_into(&codec, &group, &packed, &mut canon, &mut scratch);
        assert_eq!(pi, 0);
        assert_eq!(canon, packed);
    }
}
