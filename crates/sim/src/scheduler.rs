//! Schedulers (daemons) for the interleaving model.
//!
//! A computation in the paper's model is a *weakly fair* maximal sequence
//! of action executions: if an action is enabled in all but finitely many
//! states of an infinite computation it is executed infinitely often. The
//! engine enumerates the enabled action instances each step; a
//! [`Scheduler`] picks which one fires.
//!
//! Provided daemons:
//!
//! * [`RoundRobinScheduler`] — cycles over processes, rotating among each
//!   process's actions; weakly fair by construction.
//! * [`LeastRecentScheduler`] — always fires the enabled move that has gone
//!   longest without executing; strongly fair.
//! * [`RandomScheduler`] — uniform over enabled moves; weakly fair with
//!   probability 1.
//! * [`AdversarialScheduler`] — pursues a hostile policy but is forced by a
//!   fairness bound `B`: any move continuously enabled for `B` picks fires.
//! * [`ScriptedScheduler`] — replays an exact schedule (used to reproduce
//!   the paper's Figure 2 computation).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::algorithm::{ActionId, Move};
use crate::graph::ProcessId;
use crate::rng;

/// An enabled move together with how many consecutive steps (including the
/// current one) it has been continuously enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnabledMove {
    /// The move.
    pub mv: Move,
    /// Continuous enabledness age, in steps (`1` = newly enabled).
    pub age: u64,
}

/// A daemon: picks which enabled move fires each step.
///
/// Implementations must return an index into `enabled`, which is never
/// empty when `pick` is called.
pub trait Scheduler {
    /// Choose one of the enabled moves.
    fn pick(&mut self, step: u64, enabled: &[EnabledMove]) -> usize;

    /// Scheduler name for reports.
    fn name(&self) -> &str;
}

/// Forwarding impl so scheduler *factories* returning `Box<dyn
/// Scheduler>` plug straight into `EngineBuilder::scheduler` (used by
/// the differential test sweeps).
impl Scheduler for Box<dyn Scheduler> {
    fn pick(&mut self, step: u64, enabled: &[EnabledMove]) -> usize {
        (**self).pick(step, enabled)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Cycles over processes; within a process, rotates which enabled action
/// fires. Weakly fair: a continuously enabled action is fired within
/// `n * max_actions` steps.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
    /// Per-process rotation offset among its action instances.
    rotation: HashMap<ProcessId, usize>,
}

impl RoundRobinScheduler {
    /// A fresh round-robin daemon.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, _step: u64, enabled: &[EnabledMove]) -> usize {
        // Find the enabled process closest at-or-after the cursor.
        let max_pid = enabled.iter().map(|m| m.mv.pid.index()).max().unwrap_or(0);
        let modulus = max_pid + 1;
        let best_pid = enabled
            .iter()
            .map(|m| m.mv.pid.index())
            .min_by_key(|&p| (p + modulus - self.cursor % modulus) % modulus)
            .expect("pick called with enabled moves");
        let of_pid: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(_, m)| m.mv.pid.index() == best_pid)
            .map(|(i, _)| i)
            .collect();
        let rot = self.rotation.entry(ProcessId(best_pid)).or_insert(0);
        let choice = of_pid[*rot % of_pid.len()];
        *rot = rot.wrapping_add(1);
        self.cursor = best_pid + 1;
        choice
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Fires the enabled move whose `(pid, action)` executed least recently
/// (never-executed moves first, in `(pid, action)` order). Strongly fair.
#[derive(Clone, Debug, Default)]
pub struct LeastRecentScheduler {
    last_exec: HashMap<Move, u64>,
}

impl LeastRecentScheduler {
    /// A fresh least-recently-served daemon.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LeastRecentScheduler {
    fn pick(&mut self, step: u64, enabled: &[EnabledMove]) -> usize {
        let (i, m) = enabled
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| {
                (
                    self.last_exec.get(&m.mv).copied().unwrap_or(0),
                    m.mv.pid,
                    m.mv.action,
                )
            })
            .expect("pick called with enabled moves");
        self.last_exec.insert(m.mv, step + 1);
        i
    }

    fn name(&self) -> &str {
        "least-recent"
    }
}

/// Picks uniformly at random among enabled moves. Deterministic in its
/// seed; weakly fair with probability 1.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A random daemon with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: rng::rng(rng::subseed(seed, 0x5EED)),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, _step: u64, enabled: &[EnabledMove]) -> usize {
        self.rng.gen_range(0..enabled.len())
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Hostile selection policies for [`AdversarialScheduler`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Adversary {
    /// Avoid firing the given action kind for as long as fairness allows
    /// (e.g. delay every `exit` to stretch eating sections).
    AvoidKind(usize),
    /// Avoid scheduling the given process for as long as fairness allows.
    StarveProcess(ProcessId),
    /// Prefer firing the given action kind whenever it is enabled.
    PreferKind(usize),
    /// Always pick the *newest*-enabled move (LIFO), starving old moves
    /// up to the fairness bound.
    Newest,
    /// Strict kind preference: fire a move of the earliest listed kind
    /// that has any enabled instance; kinds not listed are a last
    /// resort. (E.g. `[LEAVE, JOIN]` realizes the paper's cycle-livelock
    /// schedule: keep everyone flapping between hungry and thinking and
    /// never let an `enter` fire voluntarily.)
    KindOrder(Vec<usize>),
}

/// A hostile but weakly fair daemon: follows its [`Adversary`] policy
/// except that any move continuously enabled for `bound` steps is fired
/// immediately (oldest first). With `bound = B` every computation it
/// produces is weakly fair.
#[derive(Clone, Debug)]
pub struct AdversarialScheduler {
    policy: Adversary,
    bound: u64,
    rng: StdRng,
}

impl AdversarialScheduler {
    /// A hostile daemon with the given policy and fairness bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` (a zero bound could never fire anything).
    pub fn new(policy: Adversary, bound: u64, seed: u64) -> Self {
        assert!(bound > 0, "fairness bound must be positive");
        AdversarialScheduler {
            policy,
            bound,
            rng: rng::rng(rng::subseed(seed, 0xADE0)),
        }
    }
}

impl Scheduler for AdversarialScheduler {
    fn pick(&mut self, _step: u64, enabled: &[EnabledMove]) -> usize {
        // Fairness override: fire the oldest overdue move.
        if let Some((i, _)) = enabled
            .iter()
            .enumerate()
            .filter(|(_, m)| m.age >= self.bound)
            .max_by_key(|(_, m)| m.age)
        {
            return i;
        }
        let candidates: Vec<usize> = match &self.policy {
            Adversary::AvoidKind(k) => {
                let avoid: Vec<usize> = enabled
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.mv.action.kind != *k)
                    .map(|(i, _)| i)
                    .collect();
                if avoid.is_empty() {
                    (0..enabled.len()).collect()
                } else {
                    avoid
                }
            }
            Adversary::StarveProcess(p) => {
                let avoid: Vec<usize> = enabled
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.mv.pid != *p)
                    .map(|(i, _)| i)
                    .collect();
                if avoid.is_empty() {
                    (0..enabled.len()).collect()
                } else {
                    avoid
                }
            }
            Adversary::PreferKind(k) => {
                let pref: Vec<usize> = enabled
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.mv.action.kind == *k)
                    .map(|(i, _)| i)
                    .collect();
                if pref.is_empty() {
                    (0..enabled.len()).collect()
                } else {
                    pref
                }
            }
            Adversary::Newest => {
                let min_age = enabled.iter().map(|m| m.age).min().unwrap_or(1);
                enabled
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.age == min_age)
                    .map(|(i, _)| i)
                    .collect()
            }
            Adversary::KindOrder(order) => {
                let mut chosen: Vec<usize> = Vec::new();
                for &k in order {
                    chosen = enabled
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.mv.action.kind == k)
                        .map(|(i, _)| i)
                        .collect();
                    if !chosen.is_empty() {
                        break;
                    }
                }
                if chosen.is_empty() {
                    (0..enabled.len()).collect()
                } else {
                    chosen
                }
            }
        };
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    fn name(&self) -> &str {
        "adversarial"
    }
}

/// Replays an exact schedule of moves; panics if a scripted move is not
/// enabled when its turn comes (so scenario tests fail loudly), and after
/// the script is exhausted behaves like [`LeastRecentScheduler`].
#[derive(Clone, Debug)]
pub struct ScriptedScheduler {
    script: Vec<Move>,
    pos: usize,
    lenient: bool,
    skipped: usize,
    fallback: LeastRecentScheduler,
}

impl ScriptedScheduler {
    /// Replay exactly `script`, then fall back to fair scheduling.
    pub fn new(script: Vec<Move>) -> Self {
        ScriptedScheduler {
            script,
            pos: 0,
            lenient: false,
            skipped: 0,
            fallback: LeastRecentScheduler::new(),
        }
    }

    /// Replay `script`, silently *skipping* entries whose move is not
    /// enabled when their turn comes instead of panicking. Deterministic
    /// given the same engine state, which makes it safe to drive with
    /// delta-debugged scripts whose remaining moves may no longer chain
    /// (the shrinker treats a skip-heavy run as a failed reproduction
    /// rather than an error).
    pub fn lenient(script: Vec<Move>) -> Self {
        ScriptedScheduler {
            lenient: true,
            ..Self::new(script)
        }
    }

    /// How many scripted moves have fired so far.
    pub fn position(&self) -> usize {
        self.pos - self.skipped
    }

    /// How many scripted entries were skipped because their move was not
    /// enabled (always `0` for the strict constructor).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Whether the whole script has been replayed.
    pub fn finished(&self) -> bool {
        self.pos >= self.script.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn pick(&mut self, step: u64, enabled: &[EnabledMove]) -> usize {
        while self.pos < self.script.len() {
            let want = self.script[self.pos];
            let found = enabled.iter().position(|m| m.mv == want);
            match found {
                Some(i) => {
                    self.pos += 1;
                    return i;
                }
                None if self.lenient => {
                    self.pos += 1;
                    self.skipped += 1;
                }
                None => panic!(
                    "scripted move #{} {:?} is not enabled at step {step}; enabled: {:?}",
                    self.pos,
                    want,
                    enabled.iter().map(|m| m.mv).collect::<Vec<_>>()
                ),
            }
        }
        self.fallback.pick(step, enabled)
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

/// Convenience constructor for a [`Move`].
pub fn mv(pid: usize, kind: usize) -> Move {
    Move {
        pid: ProcessId(pid),
        action: ActionId::global(kind),
    }
}

/// Convenience constructor for a per-neighbor [`Move`].
pub fn mv_slot(pid: usize, kind: usize, slot: usize) -> Move {
    Move {
        pid: ProcessId(pid),
        action: ActionId::at_slot(kind, slot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moves(pids: &[usize]) -> Vec<EnabledMove> {
        pids.iter()
            .map(|&p| EnabledMove {
                mv: mv(p, 0),
                age: 1,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_processes() {
        let mut s = RoundRobinScheduler::new();
        let e = moves(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|st| s.pick(st, &e)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_rotates_actions_within_a_process() {
        let mut s = RoundRobinScheduler::new();
        let e = vec![
            EnabledMove {
                mv: mv(0, 0),
                age: 1,
            },
            EnabledMove {
                mv: mv(0, 1),
                age: 1,
            },
        ];
        let a = s.pick(0, &e);
        let b = s.pick(1, &e);
        assert_ne!(a, b, "successive picks rotate between the two actions");
    }

    #[test]
    fn least_recent_serves_everything() {
        let mut s = LeastRecentScheduler::new();
        let e = moves(&[2, 0, 1]);
        let mut served = std::collections::HashSet::new();
        for st in 0..3 {
            served.insert(e[s.pick(st, &e)].mv.pid);
        }
        assert_eq!(served.len(), 3);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let e = moves(&[0, 1, 2, 3]);
        let a: Vec<usize> = {
            let mut s = RandomScheduler::new(3);
            (0..16).map(|st| s.pick(st, &e)).collect()
        };
        let b: Vec<usize> = {
            let mut s = RandomScheduler::new(3);
            (0..16).map(|st| s.pick(st, &e)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 4));
    }

    #[test]
    fn adversary_avoids_kind_until_forced() {
        let mut s = AdversarialScheduler::new(Adversary::AvoidKind(1), 5, 0);
        let e = vec![
            EnabledMove {
                mv: mv(0, 0),
                age: 1,
            },
            EnabledMove {
                mv: mv(1, 1),
                age: 1,
            },
        ];
        for st in 0..10 {
            assert_eq!(s.pick(st, &e), 0, "avoids kind 1 while fairness allows");
        }
        let overdue = vec![
            EnabledMove {
                mv: mv(0, 0),
                age: 1,
            },
            EnabledMove {
                mv: mv(1, 1),
                age: 5,
            },
        ];
        assert_eq!(s.pick(10, &overdue), 1, "fairness bound forces kind 1");
    }

    #[test]
    fn adversary_starves_process_until_forced() {
        let mut s = AdversarialScheduler::new(Adversary::StarveProcess(ProcessId(0)), 3, 1);
        let e = moves(&[0, 1]);
        assert_eq!(e[s.pick(0, &e)].mv.pid, ProcessId(1));
        let overdue = vec![
            EnabledMove {
                mv: mv(0, 0),
                age: 3,
            },
            EnabledMove {
                mv: mv(1, 0),
                age: 1,
            },
        ];
        assert_eq!(overdue[s.pick(1, &overdue)].mv.pid, ProcessId(0));
    }

    #[test]
    fn adversary_prefers_kind() {
        let mut s = AdversarialScheduler::new(Adversary::PreferKind(2), 100, 2);
        let e = vec![
            EnabledMove {
                mv: mv(0, 0),
                age: 1,
            },
            EnabledMove {
                mv: mv(1, 2),
                age: 1,
            },
        ];
        assert_eq!(s.pick(0, &e), 1);
    }

    #[test]
    fn adversary_kind_order_prefers_earliest_listed() {
        let mut s = AdversarialScheduler::new(Adversary::KindOrder(vec![1, 0]), 100, 5);
        let e = vec![
            EnabledMove {
                mv: mv(0, 0),
                age: 1,
            },
            EnabledMove {
                mv: mv(1, 1),
                age: 1,
            },
            EnabledMove {
                mv: mv(2, 2),
                age: 1,
            },
        ];
        assert_eq!(s.pick(0, &e), 1, "kind 1 listed first");
        let only_unlisted = vec![EnabledMove {
            mv: mv(2, 2),
            age: 1,
        }];
        assert_eq!(
            s.pick(1, &only_unlisted),
            0,
            "unlisted kinds as last resort"
        );
    }

    #[test]
    fn adversary_newest_picks_min_age() {
        let mut s = AdversarialScheduler::new(Adversary::Newest, 100, 4);
        let e = vec![
            EnabledMove {
                mv: mv(0, 0),
                age: 9,
            },
            EnabledMove {
                mv: mv(1, 0),
                age: 1,
            },
        ];
        assert_eq!(s.pick(0, &e), 1);
    }

    #[test]
    #[should_panic(expected = "fairness bound must be positive")]
    fn adversary_rejects_zero_bound() {
        AdversarialScheduler::new(Adversary::Newest, 0, 0);
    }

    #[test]
    fn scripted_replays_and_falls_back() {
        let mut s = ScriptedScheduler::new(vec![mv(1, 0), mv(0, 0)]);
        let e = moves(&[0, 1]);
        assert_eq!(s.pick(0, &e), 1);
        assert!(!s.finished());
        assert_eq!(s.pick(1, &e), 0);
        assert!(s.finished());
        // Fallback keeps going.
        let _ = s.pick(2, &e);
        assert_eq!(s.position(), 2);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn scripted_panics_on_unavailable_move() {
        let mut s = ScriptedScheduler::new(vec![mv(5, 0)]);
        let e = moves(&[0, 1]);
        s.pick(0, &e);
    }

    /// The lenient constructor skips script entries whose move is not
    /// currently enabled (counting them) instead of panicking, fires
    /// the rest in order, and falls back after exhaustion.
    #[test]
    fn lenient_scripted_skips_disabled_entries() {
        let mut s = ScriptedScheduler::lenient(vec![mv(5, 0), mv(1, 0), mv(7, 3), mv(0, 0)]);
        let e = moves(&[0, 1]);
        // mv(5,0) is not enabled: skipped, mv(1,0) fires.
        assert_eq!(s.pick(0, &e), 1);
        assert_eq!(s.skipped(), 1);
        assert_eq!(s.position(), 1);
        // mv(7,3) skipped, mv(0,0) fires; the script is exhausted.
        assert_eq!(s.pick(1, &e), 0);
        assert_eq!(s.skipped(), 2);
        assert!(s.finished());
        // Deterministic fallback keeps the run going; only scripted
        // fires count toward the position.
        let _ = s.pick(2, &e);
        assert_eq!(s.position(), 2);
        // A strict scheduler never skips.
        let mut strict = ScriptedScheduler::new(vec![mv(0, 0)]);
        strict.pick(0, &e);
        assert_eq!(strict.skipped(), 0);
    }
}
