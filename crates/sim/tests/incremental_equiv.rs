//! Differential tests for the two performance-critical dual
//! implementations:
//!
//! * **engine** — the incremental (dirty-set + age-table) enumeration
//!   must reproduce the naive from-scratch enumeration *bit for bit*:
//!   same `StepOutcome` every step, same final state, health, metrics,
//!   and eating-pair counters, across topology families, seeds,
//!   schedulers, workloads, and the full fault taxonomy;
//! * **explorer** — the parallel frontier-sharded search must produce
//!   the same report as the sequential search, including violation
//!   traces and truncation points.
//!
//! These run on the paper's actual algorithm (`MaliciousCrashDiners`),
//! not just the toy one, so malicious pseudo-moves, per-neighbor action
//! slots, and priority edge variables are all exercised.

use diners_core::predicates::{e_holds, nc_holds};
use diners_core::MaliciousCrashDiners;
use diners_sim::algorithm::{DinerAlgorithm, Phase, SystemState};
use diners_sim::engine::{Engine, EnumerationMode};
use diners_sim::explore::{explore, explore_parallel, ExplorationReport, Limits};
use diners_sim::fault::{FaultPlan, Health};
use diners_sim::graph::{ProcessId, Topology};
use diners_sim::scheduler::{LeastRecentScheduler, RandomScheduler};
use diners_sim::toy::ToyDiners;
use diners_sim::workload::{AlwaysHungry, BernoulliWorkload, QuotaWorkload};

/// Run the same configuration under both enumeration modes and demand
/// bit-identical behavior, step for step.
fn assert_modes_agree<A>(make: impl Fn(EnumerationMode) -> Engine<A>, steps: u64, label: &str)
where
    A: DinerAlgorithm,
    A::Local: std::fmt::Debug + PartialEq,
    A::Edge: std::fmt::Debug + PartialEq,
{
    let mut naive = make(EnumerationMode::Naive);
    let mut inc = make(EnumerationMode::Incremental);
    for s in 0..steps {
        let a = naive.step();
        let b = inc.step();
        assert_eq!(a, b, "{label}: outcome diverged at step {s}");
        assert_eq!(
            inc.eating_pairs(),
            naive.eating_pairs_scan(),
            "{label}: eating-pair counters diverged at step {s}"
        );
    }
    assert_eq!(naive.step_count(), inc.step_count(), "{label}: step count");
    assert_eq!(
        naive.state().locals(),
        inc.state().locals(),
        "{label}: final locals"
    );
    assert_eq!(
        naive.state().edges(),
        inc.state().edges(),
        "{label}: final edges"
    );
    assert_eq!(naive.health(), inc.health(), "{label}: final health");
    assert_eq!(naive.metrics(), inc.metrics(), "{label}: metrics");
}

/// Fault plans covering the paper's whole taxonomy, scaled to `n`
/// processes.
fn fault_plans(n: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        ("crash", FaultPlan::new().crash(40, 1 % n)),
        ("malicious", FaultPlan::new().malicious_crash(30, 2 % n, 5)),
        (
            "transient",
            FaultPlan::new().transient_local(25, 0).transient_global(60),
        ),
        ("arbitrary-start", FaultPlan::new().from_arbitrary_state()),
        (
            "dead+crash",
            FaultPlan::new().initially_dead(0).crash(50, n - 1),
        ),
    ]
}

fn families() -> Vec<Topology> {
    vec![
        Topology::ring(9),
        Topology::line(8),
        Topology::grid(3, 3),
        Topology::star(8),
        Topology::random_connected(10, 0.3, 7),
    ]
}

#[test]
fn mca_modes_agree_across_topologies_seeds_schedulers_and_faults() {
    for topo in families() {
        for seed in 0..8u64 {
            for least_recent in [true, false] {
                for (fname, plan) in fault_plans(topo.len()) {
                    let label = format!(
                        "{} seed={seed} lr={least_recent} faults={fname}",
                        topo.name()
                    );
                    assert_modes_agree(
                        |mode| {
                            let b = Engine::builder(MaliciousCrashDiners::paper(), topo.clone())
                                .workload(AlwaysHungry)
                                .faults(plan.clone())
                                .seed(seed.wrapping_mul(1000) + 17)
                                .enumeration(mode);
                            if least_recent {
                                b.scheduler(LeastRecentScheduler::new()).build()
                            } else {
                                b.scheduler(RandomScheduler::new(seed ^ 0xabc)).build()
                            }
                        },
                        200,
                        &label,
                    );
                }
            }
        }
    }
}

#[test]
fn modes_agree_with_a_step_dependent_workload() {
    // Bernoulli keeps `step_dependent() == true`, forcing the
    // incremental engine through its per-step needs rescan.
    for seed in 0..8u64 {
        assert_modes_agree(
            |mode| {
                Engine::builder(MaliciousCrashDiners::paper(), Topology::ring(7))
                    .workload(BernoulliWorkload::new(seed, 1, 3))
                    .scheduler(RandomScheduler::new(seed))
                    .faults(FaultPlan::new().malicious_crash(35, 3, 4).crash(80, 0))
                    .seed(seed)
                    .enumeration(mode)
                    .build()
            },
            300,
            &format!("bernoulli seed={seed}"),
        );
    }
}

#[test]
fn modes_agree_with_a_quota_workload_through_quiescence() {
    // Quota opts out of the per-step rescan; its `needs` flips exactly
    // at `note_eat`, and the run ends quiescent once everyone is sated —
    // covering both the meal-driven invalidation and Quiescent outcomes.
    for seed in 0..8u64 {
        assert_modes_agree(
            |mode| {
                Engine::builder(ToyDiners, Topology::ring(6))
                    .workload(QuotaWorkload::uniform(6, 3))
                    .scheduler(RandomScheduler::new(seed))
                    .seed(seed)
                    .enumeration(mode)
                    .build()
            },
            400,
            &format!("quota seed={seed}"),
        );
    }
}

fn assert_same_search(a: &ExplorationReport, b: &ExplorationReport, label: &str) {
    assert_eq!(a.states, b.states, "{label}: states");
    assert_eq!(a.transitions, b.transitions, "{label}: transitions");
    assert_eq!(a.deadlocks, b.deadlocks, "{label}: deadlocks");
    assert_eq!(a.violation, b.violation, "{label}: violation trace");
    assert_eq!(a.truncated, b.truncated, "{label}: truncation");
    assert_eq!(a.layers, b.layers, "{label}: layers");
    assert_eq!(a.peak_frontier, b.peak_frontier, "{label}: peak frontier");
    assert_eq!(a.dedup_hits, b.dedup_hits, "{label}: dedup hits");
}

#[test]
fn parallel_explore_matches_sequential_on_mca() {
    let alg = MaliciousCrashDiners::paper();
    for topo in [Topology::line(4), Topology::ring(4)] {
        let n = topo.len();
        let initial = SystemState::initial(&alg, &topo);
        let health = vec![Health::Live; n];
        let needs = vec![true; n];
        let seq = explore(
            &alg,
            &topo,
            initial.clone(),
            &health,
            &needs,
            |snap| e_holds(snap) && nc_holds(snap),
            Limits::default(),
        );
        assert!(seq.verified(), "{:?}", seq);
        for threads in [2, 4] {
            let par = explore_parallel(
                &alg,
                &topo,
                initial.clone(),
                &health,
                &needs,
                |snap| e_holds(snap) && nc_holds(snap),
                Limits::default(),
                threads,
            );
            assert_same_search(&seq, &par, &format!("{} t={threads}", topo.name()));
        }
    }
}

#[test]
fn parallel_explore_matches_sequential_with_a_dead_eater() {
    // The locality scenario: a corpse holding the critical section.
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::line(5);
    let mut initial = SystemState::initial(&alg, &topo);
    for p in topo.processes() {
        initial.local_mut(p).phase = Phase::Hungry;
    }
    initial.local_mut(ProcessId(0)).phase = Phase::Eating;
    let mut health = vec![Health::Live; 5];
    health[0] = Health::Dead;

    let seq = explore(
        &alg,
        &topo,
        initial.clone(),
        &health,
        &[true; 5],
        e_holds,
        Limits::default(),
    );
    let par = explore_parallel(
        &alg,
        &topo,
        initial,
        &health,
        &[true; 5],
        e_holds,
        Limits::default(),
        4,
    );
    assert!(seq.verified(), "{:?}", seq);
    assert_same_search(&seq, &par, "dead-eater line(5)");
}

#[test]
fn parallel_explore_matches_sequential_on_violations_and_truncation() {
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::line(4);
    let initial = SystemState::initial(&alg, &topo);
    let health = vec![Health::Live; 4];
    let needs = vec![true; 4];

    // A predicate the algorithm actually violates: "process 0 never
    // eats". The searches must report the identical counterexample.
    let p0_starves = |snap: &diners_sim::predicate::Snapshot<'_, MaliciousCrashDiners>| {
        snap.state.local(ProcessId(0)).phase != Phase::Eating
    };
    let seq = explore(
        &alg,
        &topo,
        initial.clone(),
        &health,
        &needs,
        p0_starves,
        Limits::default(),
    );
    assert!(seq.violation.is_some(), "p0 must eventually eat");
    let par = explore_parallel(
        &alg,
        &topo,
        initial.clone(),
        &health,
        &needs,
        p0_starves,
        Limits::default(),
        3,
    );
    assert_same_search(&seq, &par, "violation");

    // Truncation in mid-layer must stop both searches at the same state.
    let limits = Limits { max_states: 123 };
    let seq = explore(
        &alg,
        &topo,
        initial.clone(),
        &health,
        &needs,
        |_| true,
        limits,
    );
    assert!(seq.truncated);
    let par = explore_parallel(&alg, &topo, initial, &health, &needs, |_| true, limits, 4);
    assert_same_search(&seq, &par, "truncation");
}
