//! Differential verification of the explorer's state representations.
//!
//! [`Reduction::Packed`] is a pure representation change: the packed
//! search must produce a **bit-identical report** (states, transitions,
//! deadlocks, layers, dedup, violation trace, truncation point) to the
//! cloned-state baseline, on every algorithm × topology family. The
//! suites here sweep that equivalence, plus codec round-trips from
//! randomly corrupted states.
//!
//! [`Reduction::Symmetry`] changes the *quotient* that is explored, so
//! only verdicts are comparable: verified / violation-found / truncated
//! and deadlock-freedom must agree with the unreduced search, state
//! counts must shrink by roughly the stabilized group order, and any
//! counterexample trace must be a *valid concrete trace of the original
//! system* — replayed here move by move against the guards.

use diners_core::MaliciousCrashDiners;
use diners_sim::algorithm::{Algorithm, Move, Phase, SystemState, View, Write};
use diners_sim::codec::{Codec, StateCodec};
use diners_sim::explore::{explore_with, ExplorationReport, ExploreConfig, Limits, Reduction};
use diners_sim::fault::Health;
use diners_sim::graph::{ProcessId, Topology};
use diners_sim::predicate::Snapshot;
use diners_sim::toy::ToyDiners;

fn live(n: usize) -> Vec<Health> {
    vec![Health::Live; n]
}

#[allow(clippy::too_many_arguments)]
fn run<A, F>(
    alg: &A,
    topo: &Topology,
    initial: SystemState<A>,
    health: &[Health],
    needs: &[bool],
    safety: F,
    limits: Limits,
    reduction: Reduction,
) -> ExplorationReport
where
    A: StateCodec + Sync,
    A::Local: std::hash::Hash + Eq + Send + Sync,
    A::Edge: std::hash::Hash + Eq + Send + Sync,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    explore_with(
        alg,
        topo,
        initial,
        health,
        needs,
        safety,
        ExploreConfig {
            limits,
            reduction,
            threads: 1,
        },
    )
}

/// Packed vs cloned must agree on every search-shaped field.
fn assert_bit_identical(cloned: &ExplorationReport, packed: &ExplorationReport, ctx: &str) {
    assert_eq!(cloned.states, packed.states, "{ctx}: states");
    assert_eq!(cloned.transitions, packed.transitions, "{ctx}: transitions");
    assert_eq!(cloned.deadlocks, packed.deadlocks, "{ctx}: deadlocks");
    assert_eq!(cloned.violation, packed.violation, "{ctx}: violation");
    assert_eq!(cloned.truncated, packed.truncated, "{ctx}: truncated");
    assert_eq!(cloned.layers, packed.layers, "{ctx}: layers");
    assert_eq!(
        cloned.peak_frontier, packed.peak_frontier,
        "{ctx}: peak_frontier"
    );
    assert_eq!(cloned.dedup_hits, packed.dedup_hits, "{ctx}: dedup_hits");
}

fn sweep_topologies() -> Vec<Topology> {
    vec![
        Topology::line(3),
        Topology::line(4),
        Topology::ring(4),
        Topology::ring(5),
        Topology::star(4),
        Topology::star(5),
        Topology::grid(2, 3),
    ]
}

#[test]
fn packed_is_bit_identical_to_cloned_for_toy_everywhere() {
    let exclusion = |snap: &Snapshot<'_, ToyDiners>| {
        snap.topo.edges().iter().all(|&(a, b)| {
            !(*snap.state.local(a) == Phase::Eating && *snap.state.local(b) == Phase::Eating)
        })
    };
    for topo in sweep_topologies() {
        let n = topo.len();
        let initial = SystemState::initial(&ToyDiners, &topo);
        let cloned = run(
            &ToyDiners,
            &topo,
            initial.clone(),
            &live(n),
            &vec![true; n],
            exclusion,
            Limits::default(),
            Reduction::None,
        );
        let packed = run(
            &ToyDiners,
            &topo,
            initial,
            &live(n),
            &vec![true; n],
            exclusion,
            Limits::default(),
            Reduction::Packed,
        );
        assert!(cloned.verified(), "{}: {cloned:?}", topo.name());
        assert_bit_identical(&cloned, &packed, topo.name());
        assert!(
            packed.bytes_interned * 4 <= cloned.bytes_interned,
            "{}: packed {} vs cloned {} bytes",
            topo.name(),
            packed.bytes_interned,
            cloned.bytes_interned
        );
    }
}

#[test]
fn packed_is_bit_identical_to_cloned_for_the_paper_algorithm() {
    let alg = MaliciousCrashDiners::paper();
    for topo in [Topology::line(3), Topology::ring(3), Topology::ring(4)] {
        let n = topo.len();
        let initial = SystemState::initial(&alg, &topo);
        let cloned = run(
            &alg,
            &topo,
            initial.clone(),
            &live(n),
            &vec![true; n],
            |_| true,
            Limits::default(),
            Reduction::None,
        );
        let packed = run(
            &alg,
            &topo,
            initial,
            &live(n),
            &vec![true; n],
            |_| true,
            Limits::default(),
            Reduction::Packed,
        );
        assert_bit_identical(&cloned, &packed, topo.name());
    }
}

#[test]
fn packed_agrees_on_truncation_points() {
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::ring(4);
    let initial = SystemState::initial(&alg, &topo);
    let limits = Limits { max_states: 500 };
    let cloned = run(
        &alg,
        &topo,
        initial.clone(),
        &live(4),
        &[true; 4],
        |_| true,
        limits,
        Reduction::None,
    );
    let packed = run(
        &alg,
        &topo,
        initial,
        &live(4),
        &[true; 4],
        |_| true,
        limits,
        Reduction::Packed,
    );
    assert!(cloned.truncated);
    assert_bit_identical(&cloned, &packed, "truncated ring(4)");
}

#[test]
fn packed_agrees_with_a_dead_eater_in_the_mix() {
    // The health vector gates which processes move; a dead eater prunes
    // the space asymmetrically and must not perturb the equivalence.
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::line(4);
    let mut initial = SystemState::initial(&alg, &topo);
    for p in topo.processes() {
        initial.local_mut(p).phase = Phase::Hungry;
    }
    initial.local_mut(ProcessId(0)).phase = Phase::Eating;
    let mut health = live(4);
    health[0] = Health::Dead;
    let cloned = run(
        &alg,
        &topo,
        initial.clone(),
        &health,
        &[true; 4],
        |_| true,
        Limits::default(),
        Reduction::None,
    );
    let packed = run(
        &alg,
        &topo,
        initial,
        &health,
        &[true; 4],
        |_| true,
        Limits::default(),
        Reduction::Packed,
    );
    assert_bit_identical(&cloned, &packed, "dead eater line(4)");
}

/// Verdict-level agreement for the symmetry quotient: same
/// verified/violated/truncated outcome and the same deadlock-freedom
/// boolean (counts legitimately differ — one representative per orbit).
fn assert_same_verdict(full: &ExplorationReport, sym: &ExplorationReport, ctx: &str) {
    assert_eq!(
        full.violation.is_some(),
        sym.violation.is_some(),
        "{ctx}: violation presence"
    );
    assert_eq!(full.truncated, sym.truncated, "{ctx}: truncated");
    assert_eq!(
        full.deadlocks == 0,
        sym.deadlocks == 0,
        "{ctx}: deadlock freedom"
    );
    assert!(
        sym.states <= full.states,
        "{ctx}: a quotient cannot be larger"
    );
}

#[test]
fn symmetry_verdicts_agree_and_rings_shrink_by_at_least_half_n() {
    // The paper's algorithm is equivariant; on a ring with uniform needs
    // and health the stabilized group is the full dihedral group of
    // order 2n, so the orbit quotient must cut the state count by at
    // least n/2 (most orbits have the full 2n elements).
    let alg = MaliciousCrashDiners::paper();
    for n in [3usize, 4] {
        let topo = Topology::ring(n);
        let initial = SystemState::initial(&alg, &topo);
        let full = run(
            &alg,
            &topo,
            initial.clone(),
            &live(n),
            &vec![true; n],
            |_| true,
            Limits::default(),
            Reduction::Packed,
        );
        let sym = run(
            &alg,
            &topo,
            initial,
            &live(n),
            &vec![true; n],
            |_| true,
            Limits::default(),
            Reduction::Symmetry,
        );
        assert_same_verdict(&full, &sym, topo.name());
        assert!(
            sym.states * (n / 2).max(2) <= full.states,
            "ring({n}): {} symmetry states vs {} full — reduction below n/2",
            sym.states,
            full.states
        );
    }
}

#[test]
fn symmetry_verdicts_agree_on_lines_and_stars() {
    let alg = MaliciousCrashDiners::paper();
    for topo in [Topology::line(3), Topology::line(4), Topology::star(4)] {
        let n = topo.len();
        let initial = SystemState::initial(&alg, &topo);
        let full = run(
            &alg,
            &topo,
            initial.clone(),
            &live(n),
            &vec![true; n],
            |_| true,
            Limits::default(),
            Reduction::Packed,
        );
        let sym = run(
            &alg,
            &topo,
            initial,
            &live(n),
            &vec![true; n],
            |_| true,
            Limits::default(),
            Reduction::Symmetry,
        );
        assert_same_verdict(&full, &sym, topo.name());
        assert!(
            sym.states < full.states,
            "{}: expected a strict reduction, got {} vs {}",
            topo.name(),
            sym.states,
            full.states
        );
    }
}

#[test]
fn asymmetric_health_shrinks_the_stabilizer_soundly() {
    // A dead process breaks most of the ring's symmetry: the stabilizer
    // keeps only automorphisms fixing the health vector. Verdicts must
    // still agree with the unreduced search.
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::ring(4);
    let mut initial = SystemState::initial(&alg, &topo);
    for p in topo.processes() {
        initial.local_mut(p).phase = Phase::Hungry;
    }
    initial.local_mut(ProcessId(0)).phase = Phase::Eating;
    let mut health = live(4);
    health[0] = Health::Dead;
    let full = run(
        &alg,
        &topo,
        initial.clone(),
        &health,
        &[true; 4],
        |_| true,
        Limits::default(),
        Reduction::Packed,
    );
    let sym = run(
        &alg,
        &topo,
        initial,
        &health,
        &[true; 4],
        |_| true,
        Limits::default(),
        Reduction::Symmetry,
    );
    // The reflection fixing p0 survives (it maps the dead process to
    // itself), so some reduction remains — and never an unsound merge.
    assert_same_verdict(&full, &sym, "ring(4) dead eater");
}

#[test]
fn symmetry_truncates_where_the_full_space_is_infinite() {
    // Seeded priority cycle on ring(3): depths pump without bound, so
    // both the full and the quotient search must hit the state cap.
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::ring(3);
    let mut initial = SystemState::initial(&alg, &topo);
    for i in 0..3 {
        let a = ProcessId(i);
        let b = ProcessId((i + 1) % 3);
        let e = topo.edge_between(a, b).unwrap();
        initial.edge_mut(e).ancestor = a;
        initial.local_mut(a).phase = Phase::Hungry;
    }
    let limits = Limits { max_states: 20_000 };
    let full = run(
        &alg,
        &topo,
        initial.clone(),
        &live(3),
        &[true; 3],
        |_| true,
        limits,
        Reduction::Packed,
    );
    let sym = run(
        &alg,
        &topo,
        initial,
        &live(3),
        &[true; 3],
        |_| true,
        limits,
        Reduction::Symmetry,
    );
    assert!(full.truncated && sym.truncated);
}

/// Replay a move sequence against the real guards: every move must be
/// enabled in the state it fires from. Returns the final state.
fn replay<A: Algorithm>(
    alg: &A,
    topo: &Topology,
    mut state: SystemState<A>,
    needs: &[bool],
    trace: &[Move],
) -> SystemState<A> {
    for (i, mv) in trace.iter().enumerate() {
        let writes: Vec<Write<A>> = {
            let view = View::new(topo, &state, mv.pid, needs[mv.pid.index()]);
            assert!(
                alg.enabled(&view, mv.action),
                "trace step {i}: {mv:?} not enabled"
            );
            alg.execute(&view, mv.action)
        };
        for w in writes {
            match w {
                Write::Local(l) => *state.local_mut(mv.pid) = l,
                Write::Edge { neighbor, value } => {
                    let e = topo.edge_between(mv.pid, neighbor).unwrap();
                    *state.edge_mut(e) = value;
                }
            }
        }
    }
    state
}

#[test]
fn rehydrated_symmetry_traces_replay_on_the_original_system() {
    // Force a violation with a *symmetric* predicate ("nobody ever
    // eats") and check the rehydrated counterexample is a real trace of
    // the unpermuted system: every move enabled, final state violating.
    let alg = MaliciousCrashDiners::paper();
    let nobody_eats = |snap: &Snapshot<'_, MaliciousCrashDiners>| {
        snap.topo
            .processes()
            .all(|p| snap.state.local(p).phase != Phase::Eating)
    };
    for topo in [
        Topology::ring(4),
        Topology::ring(5),
        Topology::line(4),
        Topology::star(4),
    ] {
        let n = topo.len();
        let initial = SystemState::initial(&alg, &topo);
        let needs = vec![true; n];
        let sym = run(
            &alg,
            &topo,
            initial.clone(),
            &live(n),
            &needs,
            nobody_eats,
            Limits::default(),
            Reduction::Symmetry,
        );
        let trace = sym.violation.expect("someone must eventually eat");
        assert!(!trace.is_empty());
        let end = replay(&alg, &topo, initial.clone(), &needs, &trace);
        assert!(
            !nobody_eats(&Snapshot::new(&topo, &end, &live(n))),
            "{}: rehydrated trace does not end in a violation",
            topo.name()
        );
        // The unreduced search must find a violation at the same depth
        // (BFS depth is orbit-invariant).
        let full = run(
            &alg,
            &topo,
            initial,
            &live(n),
            &needs,
            nobody_eats,
            Limits::default(),
            Reduction::Packed,
        );
        assert_eq!(
            full.violation.expect("full search agrees").len(),
            trace.len(),
            "{}: shortest-counterexample depth differs",
            topo.name()
        );
    }
}

#[test]
fn toy_codec_round_trips_from_random_corrupted_states() {
    let mut rng = diners_sim::rng::rng(7);
    for topo in sweep_topologies() {
        let codec = Codec::new(&ToyDiners, &topo);
        for _ in 0..50 {
            let mut s = SystemState::initial(&ToyDiners, &topo);
            s.corrupt_all(&ToyDiners, &topo, &mut rng);
            let packed = codec.encode(&s);
            assert_eq!(codec.decode(&packed), s, "{}", topo.name());
        }
    }
}

#[test]
fn parallel_packed_and_symmetry_match_their_sequential_runs() {
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::ring(4);
    let initial = SystemState::initial(&alg, &topo);
    for reduction in [Reduction::Packed, Reduction::Symmetry] {
        let seq = run(
            &alg,
            &topo,
            initial.clone(),
            &live(4),
            &[true; 4],
            |_| true,
            Limits::default(),
            reduction,
        );
        let par = explore_with(
            &alg,
            &topo,
            initial.clone(),
            &live(4),
            &[true; 4],
            |_| true,
            ExploreConfig {
                limits: Limits::default(),
                reduction,
                threads: 4,
            },
        );
        assert_bit_identical(&seq, &par, &format!("{reduction:?} parallel"));
    }
}

// ---------------------------------------------------------------------
// Negative symmetry: topologies with no modeled automorphisms.
// ---------------------------------------------------------------------

/// [`SymmetryGroup::for_topology`] only models the ring/line/star
/// families; everything else — grids, trees, random graphs, cliques —
/// must *truthfully* claim the trivial group. Claiming no symmetry is
/// always sound (it just forgoes reduction); claiming a spurious
/// permutation would merge distinct orbits and break verification, so
/// this is the side that must never be wrong.
#[test]
fn unmodeled_topologies_report_the_trivial_group() {
    use diners_sim::symmetry::SymmetryGroup;
    for topo in [
        Topology::grid(2, 3),
        Topology::grid(3, 3),
        Topology::binary_tree(6),
        Topology::complete(4),
        Topology::random_connected(6, 0.4, 11),
        Topology::random_connected(7, 0.2, 99),
    ] {
        let g = SymmetryGroup::for_topology(&topo);
        assert!(g.is_trivial(), "{}: order {}", topo.name(), g.order());
        assert_eq!(g.order(), 1);
        assert!(g.perms()[0].is_identity());
        // The stabilizer of a trivial group is trivial too.
        let n = topo.len();
        let stab = g.stabilizing(&vec![true; n], &vec![Health::Live; n]);
        assert_eq!(stab.order(), 1);
    }
}

/// Requesting [`Reduction::Symmetry`] on an unmodeled topology must
/// degrade to exactly the packed search: same canonicalization (the
/// identity), hence a **bit-identical report** — states, transitions,
/// layers, dedup, violation trace, everything.
#[test]
fn symmetry_on_unmodeled_topologies_is_bit_identical_to_packed() {
    let alg = MaliciousCrashDiners::paper();
    for topo in [
        Topology::grid(2, 2),
        Topology::binary_tree(5),
        Topology::random_connected(5, 0.35, 7),
    ] {
        let n = topo.len();
        let nobody_eats = |snap: &Snapshot<'_, MaliciousCrashDiners>| {
            snap.topo
                .processes()
                .all(|p| snap.state.local(p).phase != Phase::Eating)
        };
        let reports: Vec<ExplorationReport> = [Reduction::Packed, Reduction::Symmetry]
            .into_iter()
            .map(|reduction| {
                run(
                    &alg,
                    &topo,
                    SystemState::initial(&alg, &topo),
                    &live(n),
                    &vec![true; n],
                    nobody_eats,
                    Limits { max_states: 50_000 },
                    reduction,
                )
            })
            .collect();
        assert_bit_identical(&reports[0], &reports[1], topo.name());
    }
}

/// The liveness checker routes through the same `effective_group`
/// plumbing: on an unmodeled topology a `Symmetry` lasso search runs
/// with the identity group and reports the same graph counts and
/// verdict as `Packed`.
#[test]
fn liveness_symmetry_on_unmodeled_topologies_degrades_to_packed() {
    use diners_sim::liveness::{check_liveness, LivenessConfig};
    let alg = MaliciousCrashDiners::paper();
    let topo = Topology::grid(2, 2);
    let n = topo.len();
    let reports: Vec<_> = [Reduction::Packed, Reduction::Symmetry]
        .into_iter()
        .map(|reduction| {
            check_liveness(
                &alg,
                &topo,
                SystemState::initial(&alg, &topo),
                &live(n),
                &vec![true; n],
                |snap: &Snapshot<'_, MaliciousCrashDiners>| {
                    snap.topo
                        .processes()
                        .any(|p| snap.state.local(p).phase == Phase::Eating)
                },
                LivenessConfig {
                    reduction,
                    ..Default::default()
                },
            )
        })
        .collect();
    assert_eq!(reports[1].group_order, 1, "grid must degrade to identity");
    assert_eq!(reports[0].states, reports[1].states);
    assert_eq!(reports[0].transitions, reports[1].transitions);
    assert_eq!(reports[0].sccs, reports[1].sccs);
    assert_eq!(reports[0].certified(), reports[1].certified());
    assert_eq!(reports[0].livelock.is_some(), reports[1].livelock.is_some());
}
