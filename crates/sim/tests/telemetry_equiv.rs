//! Observer-effect tests for the telemetry layer: attaching telemetry
//! must not change a run in any observable way, the counters it keeps
//! must agree with the ground-truth trace, and the JSONL event stream
//! must survive a serialize → parse round trip.
//!
//! Telemetry never touches the engine's RNG, scheduler, or state, so
//! equality here is *bit-identical*, step for step — the same bar the
//! incremental-vs-naive differential suite sets.

use diners_core::MaliciousCrashDiners;
use diners_sim::engine::{Engine, EnumerationMode};
use diners_sim::fault::FaultPlan;
use diners_sim::graph::Topology;
use diners_sim::scheduler::{LeastRecentScheduler, RandomScheduler};
use diners_sim::telemetry::{parse_jsonl, JsonlSink, ReplaySummary, RingSink, Telemetry};
use diners_sim::workload::{AlwaysHungry, BernoulliWorkload};

/// A workout that exercises every telemetry emission site: arbitrary
/// initial state (convergence), a benign crash, a malicious crash
/// (malicious pseudo-moves + fault events), and a transient burst.
fn stress_plan() -> FaultPlan {
    FaultPlan::new()
        .from_arbitrary_state()
        .crash(120, 1)
        .malicious_crash(200, 3, 6)
        .transient_local(320, 0)
}

fn build(
    mode: EnumerationMode,
    tele: Option<Telemetry>,
    trace: bool,
) -> Engine<MaliciousCrashDiners> {
    let mut b = Engine::builder(MaliciousCrashDiners::paper(), Topology::ring(6))
        .workload(BernoulliWorkload::new(5, 1, 3))
        .scheduler(RandomScheduler::new(5))
        .faults(stress_plan())
        .seed(5)
        .enumeration(mode)
        .record_trace(trace);
    if let Some(t) = tele {
        b = b.telemetry(t);
    }
    b.build()
}

fn assert_lockstep(
    mut a: Engine<MaliciousCrashDiners>,
    mut b: Engine<MaliciousCrashDiners>,
    steps: u64,
    label: &str,
) {
    for s in 0..steps {
        assert_eq!(a.step(), b.step(), "{label}: outcome diverged at step {s}");
    }
    assert_eq!(a.state().locals(), b.state().locals(), "{label}: locals");
    assert_eq!(a.state().edges(), b.state().edges(), "{label}: edges");
    assert_eq!(a.health(), b.health(), "{label}: health");
    assert_eq!(a.metrics(), b.metrics(), "{label}: metrics");
}

#[test]
fn telemetry_never_perturbs_the_run() {
    // Same mode, with vs without telemetry.
    for mode in [EnumerationMode::Naive, EnumerationMode::Incremental] {
        assert_lockstep(
            build(mode, None, false),
            build(mode, Some(Telemetry::new()), false),
            600,
            &format!("{mode:?} bare vs telemetry"),
        );
    }
    // Cross: naive + telemetry vs incremental + bare — telemetry must
    // not break the modes' bit-identity either.
    assert_lockstep(
        build(EnumerationMode::Naive, Some(Telemetry::new()), false),
        build(EnumerationMode::Incremental, None, false),
        600,
        "naive+telemetry vs incremental bare",
    );
    // A sink that records every event is still invisible to the run.
    assert_lockstep(
        build(EnumerationMode::Incremental, None, false),
        build(
            EnumerationMode::Incremental,
            Some(Telemetry::with_sink(RingSink::new(1 << 16))),
            false,
        ),
        600,
        "incremental bare vs ring sink",
    );
}

#[test]
fn telemetry_counters_agree_with_the_trace() {
    // The trace is the ground truth the rest of the suite trusts; the
    // telemetry action counters must say exactly the same thing.
    let mut engine = build(EnumerationMode::Incremental, Some(Telemetry::new()), true);
    engine.run(800);
    let counts = engine.trace().action_counts();
    assert!(!counts.is_empty(), "stress plan fired no actions");
    let tele = engine.take_telemetry().expect("telemetry attached");
    let reg = tele.registry();
    for (name, count) in counts {
        assert_eq!(
            reg.counter_value(&format!("engine.action.{name}")),
            Some(count),
            "counter for {name}"
        );
    }
    // Fault injections were counted too (crash + malicious + transient).
    assert_eq!(reg.counter_value("engine.faults"), Some(3));
    assert!(reg.counter_value("engine.malicious_steps").unwrap_or(0) > 0);
}

#[test]
fn lockstep_configs_under_quiet_fault_free_runs_too() {
    // Fault-free + deterministic daemon: the cheapest, most common
    // configuration must also be unperturbed.
    let make = |tele: Option<Telemetry>| {
        let mut b = Engine::builder(MaliciousCrashDiners::corrected(), Topology::line(5))
            .workload(AlwaysHungry)
            .scheduler(LeastRecentScheduler::new())
            .seed(9)
            .enumeration(EnumerationMode::Incremental);
        if let Some(t) = tele {
            b = b.telemetry(t);
        }
        b.build()
    };
    assert_lockstep(
        make(None),
        make(Some(Telemetry::new())),
        400,
        "fault-free least-recent",
    );
}

#[test]
fn jsonl_round_trip_matches_the_live_event_stream() {
    // Run the identical configuration twice — once buffering events in
    // a ring, once serializing to JSONL — and demand the parsed summary
    // equal the live one. (The runs are identical because telemetry is
    // observer-effect-free, which the lockstep tests above establish.)
    let mut ring_engine = build(
        EnumerationMode::Incremental,
        Some(Telemetry::with_sink(RingSink::new(1 << 16))),
        false,
    );
    ring_engine.run(800);
    let ring_tele = ring_engine.take_telemetry().expect("telemetry attached");
    let ring = ring_tele.sink_as::<RingSink>().expect("ring sink");
    assert_eq!(ring.dropped(), 0, "ring cap too small for the run");
    let live = ReplaySummary::of_events(ring.events());
    assert!(live.events > 0, "no events recorded");

    let mut jsonl_engine = build(
        EnumerationMode::Incremental,
        Some(Telemetry::with_sink(JsonlSink::new())),
        false,
    );
    jsonl_engine.run(800);
    let jsonl_tele = jsonl_engine.take_telemetry().expect("telemetry attached");
    let sink = jsonl_tele.sink_as::<JsonlSink>().expect("jsonl sink");
    assert_eq!(sink.count(), live.events, "event counts diverge");
    let parsed = parse_jsonl(sink.text()).expect("well-formed JSONL");
    assert_eq!(parsed, live, "round-tripped summary diverges");
}
