//! Contract certification of the toy algorithm and refutation of every
//! deliberately ill-behaved `footprint::testbad` fixture: each certifier
//! must catch exactly its fixture's defect, with a witness usable to
//! reproduce the violation.

use diners_sim::footprint::testbad::{
    FalselySymmetric, FarWriter, FlickerGuard, PeekingGuard, RogueMalicious,
};
use diners_sim::footprint::{analyze, AnalysisConfig};
use diners_sim::graph::Topology;
use diners_sim::toy::ToyDiners;

#[test]
fn toy_certifies_locality_and_purity_on_every_family() {
    for topo in [
        Topology::ring(5),
        Topology::line(4),
        Topology::star(4),
        Topology::grid(2, 3),
    ] {
        let r = analyze(&ToyDiners, &topo, &AnalysisConfig::quick());
        assert!(
            r.locality.ok(),
            "{}: {:?}",
            topo.name(),
            r.locality.witnesses
        );
        assert!(r.purity.ok(), "{}: {:?}", topo.name(), r.purity.witnesses);
        assert!(r.certified(), "{} should certify", topo.name());
    }
}

#[test]
fn toy_equivariance_refutation_names_the_tie_break() {
    let r = analyze(&ToyDiners, &Topology::ring(5), &AnalysisConfig::quick());
    // toy declares respects_symmetry = false; the certifier must agree
    // by *refuting* commutation (the pid tie-break in the enter guard),
    // not by failing to decide.
    assert!(r.equivariance.decidable);
    assert!(!r.equivariance.declared);
    assert!(!r.equivariance.inferred);
    let w = r.equivariance.witness.expect("refutation needs a witness");
    assert!(
        w.contains("enter") && w.contains("automorphism"),
        "witness should name the action and the automorphism: {w}"
    );
}

#[test]
fn peeking_guard_is_refuted_by_locality() {
    let r = analyze(&PeekingGuard, &Topology::line(3), &AnalysisConfig::quick());
    assert!(!r.locality.ok(), "2-hop guard read must be caught");
    assert!(!r.certified());
    let w = &r.locality.witnesses[0];
    assert_eq!(w.action, "peek-enter");
    assert!(
        w.detail.contains("distance 2"),
        "witness should name the offending distance: {w}"
    );
    assert!(!w.state.is_empty(), "witness must carry the state");
    // The inferred footprint records the out-of-neighborhood radius.
    assert_eq!(r.footprints[0].guard.read_radius, 2);
}

#[test]
fn far_writer_is_refuted_by_locality() {
    let r = analyze(&FarWriter, &Topology::line(3), &AnalysisConfig::quick());
    assert!(!r.locality.ok(), "non-incident edge write must be caught");
    let w = r
        .locality
        .witnesses
        .iter()
        .find(|w| w.action == "far-grab")
        .expect("witness names the action");
    assert!(
        w.detail.contains("non-neighbor"),
        "witness should name the bad edge target: {w}"
    );
    // Purity and read-locality are clean: exactly one contract broken.
    assert!(r.purity.ok());
}

#[test]
fn flicker_guard_is_refuted_by_purity() {
    let r = analyze(
        &FlickerGuard::default(),
        &Topology::line(3),
        &AnalysisConfig::quick(),
    );
    assert!(!r.purity.ok(), "hidden-state guard must be caught");
    let w = &r.purity.witnesses[0];
    assert_eq!(w.action, "flicker");
    assert!(
        w.detail.contains("re-evaluation"),
        "witness should describe the differential: {w}"
    );
    // Its reads and writes are local: locality is clean.
    assert!(r.locality.ok());
}

#[test]
fn rogue_malicious_is_refuted_by_capability() {
    let r = analyze(
        &RogueMalicious,
        &Topology::line(3),
        &AnalysisConfig::quick(),
    );
    assert!(
        !r.locality.ok(),
        "capability-exceeding malicious write must be caught"
    );
    let w = r
        .locality
        .witnesses
        .iter()
        .find(|w| w.action == "malicious")
        .expect("the malicious pseudo-action is named");
    assert!(
        w.detail.contains("capability"),
        "witness should name the capability breach: {w}"
    );
    assert!(r.malicious.writes_edge);
}

#[test]
fn falsely_symmetric_declaration_mismatch_is_flagged() {
    let r = analyze(
        &FalselySymmetric,
        &Topology::ring(5),
        &AnalysisConfig::quick(),
    );
    // Locality and purity hold — only the symmetry declaration lies.
    assert!(r.locality.ok());
    assert!(r.purity.ok());
    assert!(r.equivariance.decidable);
    assert!(r.equivariance.declared);
    assert!(!r.equivariance.inferred);
    assert!(!r.equivariance.matches_declaration());
    assert!(!r.certified());
    assert!(r.equivariance.witness.is_some());
}

#[test]
fn independence_is_conservative_for_ill_behaved_algorithms() {
    // The matrix derivation assumes locality; when locality is violated
    // the export must be marked unsound.
    let r = analyze(&PeekingGuard, &Topology::line(3), &AnalysisConfig::quick());
    assert!(!r.independence.sound);
    let json = r.independence.to_json();
    assert!(json.contains("\"sound\":false"));
}

#[test]
fn independence_json_round_trips_structurally() {
    let r = analyze(&ToyDiners, &Topology::ring(5), &AnalysisConfig::quick());
    let json = r.independence.to_json();
    assert!(json.contains("\"kinds\""));
    assert!(json.contains("\"malicious\""));
    assert!(json.contains("\"independent_at\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // 4 kinds (3 + malicious) → 16 ordered pairs.
    assert_eq!(json.matches("\"a\":").count(), 16);
}
