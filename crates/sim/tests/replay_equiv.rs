//! Differential suite for the flight recorder and deterministic replay.
//!
//! Three guarantees, each checked across topology × scheduler × mode ×
//! fault-plan sweeps:
//!
//! 1. **Observer effect is zero** — an engine with the recorder (and the
//!    causal tracer) attached runs step-for-step identically to a bare
//!    one: same outcomes, state, health, metrics and trace.
//! 2. **Round trip is exact** — serialize → parse reproduces the
//!    `Recording` value and the byte stream (the CI format-drift gate).
//! 3. **Replay is bit-identical** — driving a *fresh* engine with the
//!    recorded decisions reproduces the live run's final state, health,
//!    violation trace and metric counters exactly, and every digest
//!    checkpoint verifies.

use diners_sim::algorithm::{DinerAlgorithm, Phase};
use diners_sim::engine::{Engine, EnumerationMode};
use diners_sim::fault::FaultPlan;
use diners_sim::graph::Topology;
use diners_sim::record::{Recording, Replayer};
use diners_sim::scheduler::{
    LeastRecentScheduler, RandomScheduler, RoundRobinScheduler, Scheduler,
};
use diners_sim::toy::ToyDiners;
use diners_sim::tracing::SpanKind;
use diners_sim::workload::AlwaysHungry;
use diners_sim::ProcessId;

fn topologies() -> Vec<Topology> {
    vec![
        Topology::ring(6),
        Topology::line(5),
        Topology::star(5),
        Topology::grid(3, 3),
    ]
}

fn schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RandomScheduler::new(seed)),
        Box::new(LeastRecentScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
    ]
}

fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        ("crash", FaultPlan::new().crash(40, 1)),
        ("malicious", FaultPlan::new().malicious_crash(30, 2, 8)),
        (
            "combo",
            FaultPlan::new()
                .initially_dead(0)
                .malicious_crash(25, 3, 4)
                .transient_local(60, 2)
                .transient_global(90)
                .crash(120, 1),
        ),
        ("arbitrary", FaultPlan::new().from_arbitrary_state()),
    ]
}

/// Scheduler factory keyed by index, so both engines of a pair get an
/// identically-seeded fresh instance.
fn scheduler_at(i: usize, seed: u64) -> Box<dyn Scheduler> {
    schedulers(seed).swap_remove(i)
}

#[test]
fn recorder_and_tracer_have_zero_observer_effect() {
    for topo in topologies() {
        for si in 0..schedulers(0).len() {
            for (plan_name, plan) in fault_plans() {
                for mode in [EnumerationMode::Naive, EnumerationMode::Incremental] {
                    let ctx = format!("{} sched{si} {plan_name} {mode:?}", topo.name());
                    let bare = |instrument: bool| {
                        let mut b = Engine::builder(ToyDiners, topo.clone())
                            .scheduler(scheduler_at(si, 11))
                            .workload(AlwaysHungry)
                            .faults(plan.clone())
                            .seed(11)
                            .enumeration(mode)
                            .record_trace(true);
                        if instrument {
                            b = b.flight_recorder("toy").causal_tracing(true);
                        }
                        b.build()
                    };
                    let mut a = bare(false);
                    let mut b = bare(true);
                    for step in 0..400u64 {
                        assert_eq!(a.step(), b.step(), "{ctx}: diverged at step {step}");
                    }
                    assert_eq!(a.state(), b.state(), "{ctx}: state");
                    assert_eq!(a.health(), b.health(), "{ctx}: health");
                    assert_eq!(a.metrics(), b.metrics(), "{ctx}: metrics");
                    assert_eq!(a.trace().events(), b.trace().events(), "{ctx}: trace");
                }
            }
        }
    }
}

#[test]
fn record_serialize_parse_replay_is_bit_identical() {
    for topo in topologies() {
        for si in 0..schedulers(0).len() {
            for (plan_name, plan) in fault_plans() {
                for mode in [EnumerationMode::Naive, EnumerationMode::Incremental] {
                    let ctx = format!("{} sched{si} {plan_name} {mode:?}", topo.name());
                    let mut live = Engine::builder(ToyDiners, topo.clone())
                        .scheduler(scheduler_at(si, 5))
                        .faults(plan.clone())
                        .seed(5)
                        .enumeration(mode)
                        .record_trace(true)
                        .flight_recorder("toy")
                        .build();
                    live.run(500);

                    // Round trip through the JSONL format (CI drift gate).
                    let rec = live.recording().expect("recorder attached");
                    let text = rec.to_jsonl();
                    let back = Recording::parse(&text)
                        .unwrap_or_else(|e| panic!("{ctx}: parse failed: {e}"));
                    assert_eq!(back, rec, "{ctx}: recording round trip");
                    assert_eq!(back.to_jsonl(), text, "{ctx}: serialization stability");

                    // Replay the parsed recording on a fresh engine.
                    let (replayed, verified) = Replayer::run(&back, ToyDiners, AlwaysHungry)
                        .unwrap_or_else(|e| panic!("{ctx}: replay diverged: {e}"));
                    assert_eq!(replayed.step_count(), 500, "{ctx}");
                    assert!(verified >= 2, "{ctx}: only {verified} checkpoints");
                    assert_eq!(replayed.state(), live.state(), "{ctx}: final state");
                    assert_eq!(replayed.health(), live.health(), "{ctx}: health");
                    assert_eq!(replayed.metrics(), live.metrics(), "{ctx}: metrics");
                    assert_eq!(
                        replayed.trace().events(),
                        live.trace().events(),
                        "{ctx}: violation/event traces"
                    );
                }
            }
        }
    }
}

#[test]
fn replayer_advance_seeks_to_intermediate_steps() {
    let mut live = Engine::builder(ToyDiners, Topology::ring(6))
        .scheduler(RandomScheduler::new(3))
        .faults(FaultPlan::new().crash(100, 2))
        .seed(3)
        .flight_recorder("toy")
        .build();
    // Capture an intermediate ground truth mid-run.
    live.run(150);
    let mid_state = live.state().clone();
    let mid_health = live.health().to_vec();
    live.run(150);

    let rec = live.recording().expect("recorder attached");
    let (builder, mut replayer) = Replayer::builder(&rec, ToyDiners, AlwaysHungry);
    let mut engine = builder.build();
    replayer.advance(&mut engine, 150).expect("seek to 150");
    assert_eq!(engine.step_count(), 150);
    assert_eq!(engine.state(), &mid_state);
    assert_eq!(engine.health(), &mid_health[..]);
    // Continue to the end from where we stopped.
    replayer.advance(&mut engine, 300).expect("seek to end");
    assert_eq!(engine.state(), live.state());
}

#[test]
fn traced_engine_blames_neighbor_deviations_on_the_crash() {
    // Structural guarantee on a real run: spans of the crashed process's
    // neighbors, recorded after the crash, must blame the crash within
    // the locality bound (2 happens-before hops), and every parent edge
    // stays within one graph hop.
    //
    // ToyDiners has no crash tolerance: a process that dies *while
    // eating* blocks its neighbors forever, so they would record no
    // post-crash spans at all. Probe a fault-free twin (identical up to
    // the crash step, since faults only act when due) for a step where
    // the victim is thinking, and crash it there — neighbors then keep
    // acting and every one of their spans reads the frozen local.
    let crash_pid = ProcessId(2);
    let crash_step = {
        let mut probe = Engine::builder(ToyDiners, Topology::ring(6))
            .scheduler(RandomScheduler::new(13))
            .seed(13)
            .build();
        let mut found = None;
        while probe.step_count() < 400 {
            probe.step();
            if probe.step_count() >= 40
                && ToyDiners.phase(probe.state().local(crash_pid)) == Phase::Thinking
            {
                found = Some(probe.step_count());
                break;
            }
        }
        found.expect("victim thinks at some step in [40, 400)")
    };
    let mut e = Engine::builder(ToyDiners, Topology::ring(6))
        .scheduler(RandomScheduler::new(13))
        .faults(FaultPlan::new().crash(crash_step, crash_pid))
        .seed(13)
        .causal_tracing(true)
        .build();
    e.run(400);
    let topo = e.topology().clone();
    let tracer = e.take_tracer().expect("tracer attached");

    // Parent edges connect closed neighborhoods.
    for s in tracer.spans() {
        for &p in &s.parents {
            let parent = tracer.span(p);
            assert!(
                topo.distance(s.pid, parent.pid) <= 1,
                "parent edge spans distance {} ({} -> {})",
                topo.distance(s.pid, parent.pid),
                s.pid,
                parent.pid
            );
        }
    }

    let fault_span = tracer
        .fault_spans()
        .next()
        .expect("crash recorded as a span")
        .id;
    let mut rooted = 0;
    for s in tracer.spans() {
        if s.kind.is_fault() || s.step <= crash_step {
            continue;
        }
        if topo.distance(s.pid, crash_pid) == 1 {
            // A neighbor's post-crash span reads the frozen local
            // directly or through its own prior span: blame must land
            // within 2 hops, on the crash.
            if let Some(chain) = tracer.blame_within(s.id, 2) {
                assert_eq!(chain.root(), fault_span);
                assert!(chain.hops() <= 2);
                rooted += 1;
            }
        }
        // Universally: any chain found within 2 hops points at a fault
        // no farther than graph distance 2.
        if let Some(chain) = tracer.blame_within(s.id, 2) {
            let root = tracer.span(chain.root());
            assert!(matches!(root.kind, SpanKind::Fault(_)));
            assert!(
                topo.distance(s.pid, root.pid) <= 2,
                "blame chain escaped the locality bound"
            );
        }
    }
    assert!(rooted > 0, "no neighbor span ever blamed the crash");
}

#[test]
fn quiescent_runs_replay_too() {
    // never-hungry system: every step is quiescent, faults still fire.
    let mut live = Engine::builder(ToyDiners, Topology::line(3))
        .workload(diners_sim::workload::NeverHungry)
        .faults(FaultPlan::new().crash(5, 1))
        .flight_recorder("toy")
        .build();
    live.run(20);
    let rec = live.recording().expect("recorder attached");
    assert_eq!(rec.decisions.len(), 20);
    let (replayed, _) = Replayer::run(&rec, ToyDiners, diners_sim::workload::NeverHungry)
        .expect("quiescent replay verifies");
    assert_eq!(replayed.state(), live.state());
    assert_eq!(replayed.health(), live.health());
}
