//! Baseline and ablated dining-philosophers algorithms.
//!
//! The paper's evaluation-by-theorem claims only make sense against
//! contrasts. This crate provides them:
//!
//! * [`variants`] — the paper's algorithm with individual mechanisms
//!   ablated (`no_threshold`, `no_cycle_breaking`, `bare`), attributing
//!   failure locality to the dynamic threshold and stabilization to the
//!   depth mechanism;
//! * [`greedy::GreedyDiners`] — the no-priority diner: maximal
//!   throughput, no fairness, trivial locality for eating crashes only;
//! * [`hygienic::HygienicDiners`] — a Chandy–Misra style fork algorithm:
//!   structurally safe, live from legitimate states, but *not*
//!   stabilizing and without constant failure locality.
//!
//! All baselines implement the same `diners_sim` traits as the paper's
//! algorithm, so every experiment can sweep over them uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod greedy;
pub mod hygienic;
pub mod variants;

pub use greedy::GreedyDiners;
pub use hygienic::{ForkVar, HygienicDiners};
pub use variants::{bare, no_cycle_breaking, no_threshold, paper};
