//! A greedy diner: eat whenever no neighbor is eating.
//!
//! The weakest interesting baseline. Under the serial (composite-atomicity)
//! daemon its `enter` guard makes it safe — two neighbors can never pass
//! the guard in the same state — and it is trivially "stabilizing" for
//! safety (any illegal double-eating pair drains through `exit`). What it
//! lacks is *fairness*: with no priority structure, an unlucky process can
//! be overtaken forever by its neighbors under an adversarial daemon, and
//! there is no bound on service skew. It is also maximally parallel and
//! cheap, so it upper-bounds throughput in the fault-free comparison.

use rand::rngs::StdRng;
use rand::Rng;

use diners_sim::algorithm::{ActionId, ActionKind, Algorithm, DinerAlgorithm, Phase, View, Write};
use diners_sim::codec::{phase_from_bits, phase_to_bits, StateCodec};
use diners_sim::graph::{EdgeId, ProcessId, Topology};

/// The greedy no-priority diner; see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedyDiners;

/// Action kind index of `join`.
pub const GREEDY_JOIN: usize = 0;
/// Action kind index of `enter`.
pub const GREEDY_ENTER: usize = 1;
/// Action kind index of `exit`.
pub const GREEDY_EXIT: usize = 2;

const KINDS: &[ActionKind] = &[
    ActionKind {
        name: "join",
        per_neighbor: false,
    },
    ActionKind {
        name: "enter",
        per_neighbor: false,
    },
    ActionKind {
        name: "exit",
        per_neighbor: false,
    },
];

impl Algorithm for GreedyDiners {
    type Local = Phase;
    type Edge = ();

    fn name(&self) -> &str {
        "greedy"
    }

    fn kinds(&self) -> &[ActionKind] {
        KINDS
    }

    fn init_local(&self, _topo: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }

    fn init_edge(&self, _topo: &Topology, _e: EdgeId) {}

    fn enabled(&self, view: &View<'_, Self>, action: ActionId) -> bool {
        let me = *view.local();
        match action.kind {
            GREEDY_JOIN => me == Phase::Thinking && view.needs(),
            GREEDY_ENTER => {
                me == Phase::Hungry
                    && view
                        .neighbors()
                        .iter()
                        .all(|&q| *view.neighbor_local(q) != Phase::Eating)
            }
            GREEDY_EXIT => me == Phase::Eating,
            _ => false,
        }
    }

    fn execute(&self, _view: &View<'_, Self>, action: ActionId) -> Vec<Write<Self>> {
        let next = match action.kind {
            GREEDY_JOIN => Phase::Hungry,
            GREEDY_ENTER => Phase::Eating,
            GREEDY_EXIT => Phase::Thinking,
            _ => unreachable!("unknown greedy action {action:?}"),
        };
        vec![Write::Local(next)]
    }

    fn corrupt_local(&self, rng: &mut StdRng, _topo: &Topology, _p: ProcessId) -> Phase {
        match rng.gen_range(0..3) {
            0 => Phase::Thinking,
            1 => Phase::Hungry,
            _ => Phase::Eating,
        }
    }

    fn corrupt_edge(&self, _rng: &mut StdRng, _topo: &Topology, _e: EdgeId) {}
}

impl DinerAlgorithm for GreedyDiners {
    fn phase(&self, local: &Phase) -> Phase {
        *local
    }
}

/// 2 bits per process (the phase), nothing per edge. Greedy's guards
/// mention only neighbor phases — no process ids at all — so it is
/// equivariant and safe to explore with symmetry reduction.
impl StateCodec for GreedyDiners {
    fn local_bits(&self, _topo: &Topology) -> u32 {
        2
    }

    fn edge_bits(&self, _topo: &Topology) -> u32 {
        0
    }

    fn encode_local(&self, _topo: &Topology, _p: ProcessId, local: &Phase) -> u64 {
        phase_to_bits(*local)
    }

    fn decode_local(&self, _topo: &Topology, _p: ProcessId, bits: u64) -> Phase {
        phase_from_bits(bits)
    }

    fn encode_edge(&self, _topo: &Topology, _e: EdgeId, _value: &()) -> u64 {
        0
    }

    fn decode_edge(&self, _topo: &Topology, _e: EdgeId, _bits: u64) {}

    fn respects_symmetry(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diners_sim::engine::Engine;
    use diners_sim::fault::FaultPlan;
    use diners_sim::graph::Topology;
    use diners_sim::scheduler::{AdversarialScheduler, Adversary, RandomScheduler};

    #[test]
    fn exclusion_holds_under_serial_daemon() {
        let mut e = Engine::builder(GreedyDiners, Topology::ring(7))
            .scheduler(RandomScheduler::new(4))
            .faults(FaultPlan::new().from_arbitrary_state())
            .seed(4)
            .build();
        e.run(20_000);
        // From an arbitrary state, initial double-eating pairs drain and
        // no new ones form.
        let (_, live_pairs) = e.eating_pairs();
        assert_eq!(live_pairs, 0);
    }

    #[test]
    fn service_is_unfair_under_hostile_daemon() {
        // Starve process 2: the adversary only schedules it when forced.
        let mut e = Engine::builder(GreedyDiners, Topology::line(5))
            .scheduler(AdversarialScheduler::new(
                Adversary::StarveProcess(ProcessId(2)),
                64,
                0,
            ))
            .seed(0)
            .build();
        e.run(30_000);
        let victim = e.metrics().eats_of(ProcessId(2));
        let max = e.metrics().eats().iter().copied().max().unwrap();
        assert!(
            victim * 4 < max,
            "victim {victim} vs max {max}: greedy has no fairness mechanism"
        );
    }

    #[test]
    fn crash_while_eating_starves_neighbors_only() {
        // Greedy's locality for a single crash is 1: only direct
        // neighbors of the dead eater block.
        let mut e = Engine::builder(GreedyDiners, Topology::line(6))
            .scheduler(RandomScheduler::new(9))
            .faults(FaultPlan::new().malicious_crash(50, 2, 4))
            .seed(9)
            .build();
        e.run(5_000);
        let since = e.step_count();
        e.run(20_000);
        for p in e.topology().processes() {
            if e.is_dead(p) || e.topology().distance(p, ProcessId(2)) <= 1 {
                continue;
            }
            assert!(
                e.metrics().eats_in_window(p, since, e.step_count()) > 0,
                "{p} starved though not adjacent to the crash"
            );
        }
    }
}
