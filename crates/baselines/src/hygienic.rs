//! A hygienic (Chandy–Misra style) diner in the shared-memory model.
//!
//! The classic fork-based solution [Chandy & Misra 1984], restated with
//! one shared variable per edge holding the fork position, its
//! cleanliness, and the position of the request token:
//!
//! * a hungry process that lacks a fork and holds the request token sends
//!   the request (moves the token to the holder);
//! * a process holding a *dirty* requested fork and not eating cleans it
//!   and hands it over (dirty forks must be yielded — this is the
//!   fairness mechanism);
//! * *clean* forks are never yielded;
//! * a hungry process holding all its forks eats, dirtying them.
//!
//! Properties, for contrast with the paper's algorithm:
//!
//! * **Exclusion is structural** (a fork is in one place), even from
//!   arbitrary states.
//! * **Not stabilizing for liveness**: corrupted fork/token states can
//!   deadlock forever (e.g. a cycle of clean forks with misplaced request
//!   tokens) — see `deadlock_from_corrupted_state`.
//! * **Failure locality is not bounded by a constant**: a process stuck
//!   hungry behind a crash holds its *clean* forks forever, starving
//!   neighbors transitively along waiting chains.

use rand::rngs::StdRng;
use rand::Rng;

use diners_sim::algorithm::{ActionId, ActionKind, Algorithm, DinerAlgorithm, Phase, View, Write};
use diners_sim::codec::{phase_from_bits, phase_to_bits, StateCodec};
use diners_sim::graph::{EdgeId, ProcessId, Topology};
use diners_sim::symmetry::Perm;

/// The shared per-edge variable: fork position, cleanliness, request
/// token position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ForkVar {
    /// Which endpoint currently holds the fork.
    pub fork_at: ProcessId,
    /// Whether the fork has been used since it last moved.
    pub dirty: bool,
    /// Which endpoint currently holds the request token.
    pub req_at: ProcessId,
}

/// Action kind index of `join`.
pub const HY_JOIN: usize = 0;
/// Action kind index of `request` (per-neighbor).
pub const HY_REQUEST: usize = 1;
/// Action kind index of `grant` (per-neighbor).
pub const HY_GRANT: usize = 2;
/// Action kind index of `enter`.
pub const HY_ENTER: usize = 3;
/// Action kind index of `exit`.
pub const HY_EXIT: usize = 4;

const KINDS: &[ActionKind] = &[
    ActionKind {
        name: "join",
        per_neighbor: false,
    },
    ActionKind {
        name: "request",
        per_neighbor: true,
    },
    ActionKind {
        name: "grant",
        per_neighbor: true,
    },
    ActionKind {
        name: "enter",
        per_neighbor: false,
    },
    ActionKind {
        name: "exit",
        per_neighbor: false,
    },
];

/// The hygienic diner; see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HygienicDiners;

impl HygienicDiners {
    fn holds_all_forks(&self, view: &View<'_, Self>) -> bool {
        view.neighbors()
            .iter()
            .all(|&q| view.edge_to(q).fork_at == view.pid())
    }
}

impl Algorithm for HygienicDiners {
    type Local = Phase;
    type Edge = ForkVar;

    fn name(&self) -> &str {
        "hygienic"
    }

    fn kinds(&self) -> &[ActionKind] {
        KINDS
    }

    fn init_local(&self, _topo: &Topology, _p: ProcessId) -> Phase {
        Phase::Thinking
    }

    fn init_edge(&self, topo: &Topology, e: EdgeId) -> ForkVar {
        // Standard initialization: all forks dirty, placed so the
        // precedence order is the (acyclic) id order; request tokens at
        // the opposite endpoints.
        let (lo, hi) = topo.endpoints(e);
        ForkVar {
            fork_at: lo,
            dirty: true,
            req_at: hi,
        }
    }

    fn enabled(&self, view: &View<'_, Self>, action: ActionId) -> bool {
        let me = *view.local();
        let pid = view.pid();
        match action.kind {
            HY_JOIN => me == Phase::Thinking && view.needs(),
            HY_REQUEST => {
                let Some(slot) = action.slot else {
                    return false;
                };
                if slot >= view.neighbors().len() {
                    return false;
                }
                let q = view.neighbor_at(slot);
                let edge = view.edge_to(q);
                me == Phase::Hungry && edge.req_at == pid && edge.fork_at == q
            }
            HY_GRANT => {
                let Some(slot) = action.slot else {
                    return false;
                };
                if slot >= view.neighbors().len() {
                    return false;
                }
                let q = view.neighbor_at(slot);
                let edge = view.edge_to(q);
                me != Phase::Eating && edge.fork_at == pid && edge.req_at == pid && edge.dirty
            }
            HY_ENTER => me == Phase::Hungry && self.holds_all_forks(view),
            HY_EXIT => me == Phase::Eating,
            _ => false,
        }
    }

    fn execute(&self, view: &View<'_, Self>, action: ActionId) -> Vec<Write<Self>> {
        let pid = view.pid();
        match action.kind {
            HY_JOIN => vec![Write::Local(Phase::Hungry)],
            HY_REQUEST => {
                let q = view.neighbor_at(action.slot.expect("request is per-neighbor"));
                let mut edge = *view.edge_to(q);
                edge.req_at = q;
                vec![Write::Edge {
                    neighbor: q,
                    value: edge,
                }]
            }
            HY_GRANT => {
                let q = view.neighbor_at(action.slot.expect("grant is per-neighbor"));
                let mut edge = *view.edge_to(q);
                edge.fork_at = q;
                edge.dirty = false;
                vec![Write::Edge {
                    neighbor: q,
                    value: edge,
                }]
            }
            HY_ENTER => {
                // Eat and dirty every fork (they are all here).
                let mut writes: Vec<Write<Self>> = vec![Write::Local(Phase::Eating)];
                for &q in view.neighbors() {
                    let mut edge = *view.edge_to(q);
                    edge.dirty = true;
                    debug_assert_eq!(edge.fork_at, pid);
                    writes.push(Write::Edge {
                        neighbor: q,
                        value: edge,
                    });
                }
                writes
            }
            HY_EXIT => vec![Write::Local(Phase::Thinking)],
            _ => unreachable!("unknown hygienic action {action:?}"),
        }
    }

    fn corrupt_local(&self, rng: &mut StdRng, _topo: &Topology, _p: ProcessId) -> Phase {
        match rng.gen_range(0..3) {
            0 => Phase::Thinking,
            1 => Phase::Hungry,
            _ => Phase::Eating,
        }
    }

    fn corrupt_edge(&self, rng: &mut StdRng, topo: &Topology, e: EdgeId) -> ForkVar {
        let (a, b) = topo.endpoints(e);
        ForkVar {
            fork_at: if rng.gen_bool(0.5) { a } else { b },
            dirty: rng.gen_bool(0.5),
            req_at: if rng.gen_bool(0.5) { a } else { b },
        }
    }
}

impl DinerAlgorithm for HygienicDiners {
    fn phase(&self, local: &Phase) -> Phase {
        *local
    }
}

/// 2 bits per process (the phase), 3 bits per edge: which endpoint holds
/// the fork (0 = lower id, 1 = higher), `dirty`, and which endpoint holds
/// the request token. A ring(12) state packs into a single `u64`
/// (24 + 36 = 60 bits) instead of ~340 cloned heap bytes.
///
/// Hygienic's guards are all relative (fork/token at me vs at you), so the
/// program itself is equivariant and `respects_symmetry` is `true`; the
/// endpoint ids stored inside [`ForkVar`] are rewritten by `permute_edge`.
impl StateCodec for HygienicDiners {
    fn local_bits(&self, _topo: &Topology) -> u32 {
        2
    }

    fn edge_bits(&self, _topo: &Topology) -> u32 {
        3
    }

    fn encode_local(&self, _topo: &Topology, _p: ProcessId, local: &Phase) -> u64 {
        phase_to_bits(*local)
    }

    fn decode_local(&self, _topo: &Topology, _p: ProcessId, bits: u64) -> Phase {
        phase_from_bits(bits)
    }

    fn encode_edge(&self, topo: &Topology, e: EdgeId, value: &ForkVar) -> u64 {
        let (lo, hi) = topo.endpoints(e);
        debug_assert!(value.fork_at == lo || value.fork_at == hi);
        debug_assert!(value.req_at == lo || value.req_at == hi);
        (value.fork_at == hi) as u64
            | ((value.dirty as u64) << 1)
            | (((value.req_at == hi) as u64) << 2)
    }

    fn decode_edge(&self, topo: &Topology, e: EdgeId, bits: u64) -> ForkVar {
        let (lo, hi) = topo.endpoints(e);
        ForkVar {
            fork_at: if bits & 1 == 0 { lo } else { hi },
            dirty: bits & 0b10 != 0,
            req_at: if bits & 0b100 == 0 { lo } else { hi },
        }
    }

    fn respects_symmetry(&self) -> bool {
        true
    }

    fn permute_edge(&self, _topo: &Topology, perm: &Perm, _e: EdgeId, value: &ForkVar) -> ForkVar {
        ForkVar {
            fork_at: perm.apply(value.fork_at),
            dirty: value.dirty,
            req_at: perm.apply(value.req_at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diners_sim::algorithm::SystemState;
    use diners_sim::engine::Engine;
    use diners_sim::fault::FaultPlan;
    use diners_sim::graph::Topology;
    use diners_sim::scheduler::RandomScheduler;

    fn engine(topo: Topology, faults: FaultPlan, seed: u64) -> Engine<HygienicDiners> {
        Engine::builder(HygienicDiners, topo)
            .scheduler(RandomScheduler::new(seed))
            .faults(faults)
            .seed(seed)
            .build()
    }

    #[test]
    fn everyone_eats_from_legitimate_states() {
        let mut e = engine(Topology::ring(6), FaultPlan::none(), 2);
        e.run(30_000);
        for p in e.topology().processes() {
            assert!(e.metrics().eats_of(p) > 0, "{p} never ate");
        }
        assert_eq!(e.metrics().violation_step_count(), 0);
    }

    #[test]
    fn exclusion_is_structural_even_from_corrupted_edges() {
        for seed in 0..5 {
            let mut e = engine(
                Topology::ring(5),
                FaultPlan::new().from_arbitrary_state(),
                seed,
            );
            e.run(15_000);
            let (_, live) = e.eating_pairs();
            assert_eq!(live, 0, "seed {seed}");
        }
    }

    #[test]
    fn deadlock_from_corrupted_state() {
        // A cycle of clean forks with every request token resting at the
        // fork holder: nobody can request, nobody will grant (clean), so
        // every hungry process is stuck forever. This is why the baseline
        // is not stabilizing.
        let t = Topology::ring(4);
        let mut s: SystemState<HygienicDiners> = SystemState::initial(&HygienicDiners, &t);
        for i in 0..4 {
            let q = (i + 1) % 4;
            let e = t
                .edge_between(ProcessId(i), ProcessId(q))
                .expect("ring edge");
            // Fork held by i, clean, request token also at i.
            *s.edge_mut(e) = ForkVar {
                fork_at: ProcessId(i),
                dirty: false,
                req_at: ProcessId(i),
            };
            *s.local_mut(ProcessId(i)) = Phase::Hungry;
        }
        let mut e = Engine::builder(HygienicDiners, t)
            .scheduler(RandomScheduler::new(3))
            .initial_state(s)
            .seed(3)
            .build();
        e.run(20_000);
        assert_eq!(
            e.metrics().total_eats(),
            0,
            "the corrupted configuration deadlocks; hygienic diners cannot recover"
        );
    }

    #[test]
    fn exclusion_recovers_after_the_malicious_window() {
        // During its malicious phase a process may claim `Eating` without
        // holding forks, so exclusion can break *while* the fault is
        // active; once it halts, no live pair may eat again.
        let mut e = engine(
            Topology::line(5),
            FaultPlan::new().malicious_crash(200, 2, 2),
            4,
        );
        e.run(3_000); // crash struck and completed long ago
        let violations_at_settle = e.metrics().violation_step_count();
        e.run(25_000);
        assert!(e.is_dead(ProcessId(2)));
        assert_eq!(
            e.metrics().violation_step_count(),
            violations_at_settle,
            "no new exclusion violations after the malicious window"
        );
    }

    #[test]
    fn initial_edges_follow_id_order() {
        let t = Topology::line(3);
        let s: SystemState<HygienicDiners> = SystemState::initial(&HygienicDiners, &t);
        for i in 0..t.edge_count() {
            let e = diners_sim::graph::EdgeId(i);
            let (lo, hi) = t.endpoints(e);
            let v = s.edge(e);
            assert_eq!(v.fork_at, lo);
            assert_eq!(v.req_at, hi);
            assert!(v.dirty);
        }
    }

    #[test]
    fn grant_cleans_and_moves_the_fork() {
        let t = Topology::line(2);
        let mut s: SystemState<HygienicDiners> = SystemState::initial(&HygienicDiners, &t);
        *s.local_mut(ProcessId(1)) = Phase::Hungry;
        // p1 requests: token moves to p0.
        {
            let v = diners_sim::algorithm::View::new(&t, &s, ProcessId(1), true);
            let slot = t.slot_of(ProcessId(1), ProcessId(0));
            assert!(HygienicDiners.enabled(&v, ActionId::at_slot(HY_REQUEST, slot)));
            let w = HygienicDiners.execute(&v, ActionId::at_slot(HY_REQUEST, slot));
            for wr in w {
                if let Write::Edge { neighbor, value } = wr {
                    let e = t.edge_between(ProcessId(1), neighbor).unwrap();
                    *s.edge_mut(e) = value;
                }
            }
        }
        let e = t.edge_between(ProcessId(0), ProcessId(1)).unwrap();
        assert_eq!(s.edge(e).req_at, ProcessId(0));
        // p0 grants: fork moves, cleaned.
        {
            let v = diners_sim::algorithm::View::new(&t, &s, ProcessId(0), false);
            let slot = t.slot_of(ProcessId(0), ProcessId(1));
            assert!(HygienicDiners.enabled(&v, ActionId::at_slot(HY_GRANT, slot)));
            let w = HygienicDiners.execute(&v, ActionId::at_slot(HY_GRANT, slot));
            for wr in w {
                if let Write::Edge { neighbor, value } = wr {
                    let eid = t.edge_between(ProcessId(0), neighbor).unwrap();
                    *s.edge_mut(eid) = value;
                }
            }
        }
        assert_eq!(s.edge(e).fork_at, ProcessId(1));
        assert!(!s.edge(e).dirty);
        // A clean fork is not granted back.
        *s.local_mut(ProcessId(0)) = Phase::Hungry;
        let v = diners_sim::algorithm::View::new(&t, &s, ProcessId(1), true);
        let slot = t.slot_of(ProcessId(1), ProcessId(0));
        assert!(!HygienicDiners.enabled(&v, ActionId::at_slot(HY_GRANT, slot)));
    }
}
