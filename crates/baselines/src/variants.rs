//! Ablated variants of the paper's algorithm, packaged as baselines.
//!
//! These reuse `diners-core`'s implementation with individual mechanisms
//! switched off, so experiments can attribute each guarantee to the
//! mechanism that provides it:
//!
//! | variant            | `leave` | `fixdepth`/depth-`exit` | loses                |
//! |--------------------|---------|--------------------------|----------------------|
//! | `paper`            | yes     | yes                      | —                    |
//! | `no_threshold`     | no      | yes                      | failure locality     |
//! | `no_cycle_breaking`| yes     | no                       | stabilization        |
//! | `bare`             | no      | no                       | both                 |

use diners_core::{MaliciousCrashDiners, Variant};

/// The full algorithm (for symmetric naming in experiment matrices).
pub fn paper() -> MaliciousCrashDiners {
    MaliciousCrashDiners::paper()
}

/// The algorithm without dynamic-threshold preemption (`leave`).
pub fn no_threshold() -> MaliciousCrashDiners {
    MaliciousCrashDiners::with_variant(Variant::without_threshold())
}

/// The algorithm without depth-based cycle breaking.
pub fn no_cycle_breaking() -> MaliciousCrashDiners {
    MaliciousCrashDiners::with_variant(Variant::without_cycle_breaking())
}

/// The bare acyclic-priority diner (neither mechanism).
pub fn bare() -> MaliciousCrashDiners {
    MaliciousCrashDiners::with_variant(Variant::bare())
}

#[cfg(test)]
mod tests {
    use super::*;
    use diners_sim::algorithm::Algorithm;

    #[test]
    fn names_distinguish_variants() {
        let names: Vec<&str> = [paper(), no_threshold(), no_cycle_breaking(), bare()]
            .iter()
            .map(|a| {
                // names are 'static in effect; copy via leak-free compare
                match a.name() {
                    "nesterenko-arora" => "nesterenko-arora",
                    "no-threshold" => "no-threshold",
                    "no-cycle-breaking" => "no-cycle-breaking",
                    "bare-priority" => "bare-priority",
                    other => panic!("unexpected name {other}"),
                }
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "nesterenko-arora",
                "no-threshold",
                "no-cycle-breaking",
                "bare-priority"
            ]
        );
    }

    #[test]
    fn variant_flags_match_constructors() {
        assert!(paper().variant().dynamic_threshold);
        assert!(paper().variant().cycle_breaking);
        assert!(!no_threshold().variant().dynamic_threshold);
        assert!(no_threshold().variant().cycle_breaking);
        assert!(no_cycle_breaking().variant().dynamic_threshold);
        assert!(!no_cycle_breaking().variant().cycle_breaking);
        assert!(!bare().variant().dynamic_threshold);
        assert!(!bare().variant().cycle_breaking);
    }
}
