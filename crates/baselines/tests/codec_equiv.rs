//! Codec and symmetry differential checks for the baseline diners.
//!
//! Greedy and hygienic both declare packed codecs (2-bit phases; 3-bit
//! fork variables) and equivariance, so they are explored packed by
//! default and are eligible for symmetry reduction. The suites here
//! verify the codec injectivity contract from randomly corrupted states
//! and the verdict-equivalence of the symmetry quotient.

use diners_baselines::{ForkVar, GreedyDiners, HygienicDiners};
use diners_sim::algorithm::{Phase, SystemState};
use diners_sim::codec::Codec;
use diners_sim::explore::{explore_with, ExplorationReport, ExploreConfig, Limits, Reduction};
use diners_sim::fault::Health;
use diners_sim::graph::{ProcessId, Topology};
use diners_sim::predicate::Snapshot;

fn families() -> Vec<Topology> {
    vec![
        Topology::line(4),
        Topology::ring(5),
        Topology::star(5),
        Topology::grid(2, 3),
        Topology::complete(4),
    ]
}

#[test]
fn greedy_codec_round_trips_from_random_corruption() {
    let mut rng = diners_sim::rng::rng(5);
    for topo in families() {
        let codec = Codec::new(&GreedyDiners, &topo);
        for _ in 0..50 {
            let mut s = SystemState::initial(&GreedyDiners, &topo);
            s.corrupt_all(&GreedyDiners, &topo, &mut rng);
            let packed = codec.encode(&s);
            assert_eq!(codec.decode(&packed), s, "{}", topo.name());
        }
    }
}

#[test]
fn hygienic_codec_round_trips_from_random_corruption() {
    let mut rng = diners_sim::rng::rng(6);
    for topo in families() {
        let codec = Codec::new(&HygienicDiners, &topo);
        for _ in 0..50 {
            let mut s = SystemState::initial(&HygienicDiners, &topo);
            s.corrupt_all(&HygienicDiners, &topo, &mut rng);
            let packed = codec.encode(&s);
            assert_eq!(codec.decode(&packed), s, "{}", topo.name());
        }
    }
}

#[test]
fn hygienic_fork_var_corners_round_trip() {
    // All 8 combinations of (fork endpoint, dirty, token endpoint) on
    // every edge of a ring.
    let topo = Topology::ring(4);
    let codec = Codec::new(&HygienicDiners, &topo);
    let mut s = SystemState::initial(&HygienicDiners, &topo);
    for bits in 0u8..8 {
        for e in 0..topo.edge_count() {
            let id = diners_sim::graph::EdgeId(e);
            let (a, b) = topo.endpoints(id);
            *s.edge_mut(id) = ForkVar {
                fork_at: if bits & 1 == 0 { a } else { b },
                dirty: bits & 2 != 0,
                req_at: if bits & 4 == 0 { a } else { b },
            };
        }
        let packed = codec.encode(&s);
        assert_eq!(codec.decode(&packed), s, "pattern {bits:03b}");
    }
}

fn exclusion_greedy(snap: &Snapshot<'_, GreedyDiners>) -> bool {
    snap.topo.edges().iter().all(|&(a, b)| {
        !(*snap.state.local(a) == Phase::Eating && *snap.state.local(b) == Phase::Eating)
    })
}

fn run<A, F>(alg: &A, topo: &Topology, safety: F, reduction: Reduction) -> ExplorationReport
where
    A: diners_sim::codec::StateCodec + Sync,
    A::Local: std::hash::Hash + Eq + Send + Sync,
    A::Edge: std::hash::Hash + Eq + Send + Sync,
    F: Fn(&Snapshot<'_, A>) -> bool,
{
    let n = topo.len();
    explore_with(
        alg,
        topo,
        SystemState::initial(alg, topo),
        &vec![Health::Live; n],
        &vec![true; n],
        safety,
        ExploreConfig {
            limits: Limits::default(),
            reduction,
            threads: 1,
        },
    )
}

#[test]
fn greedy_symmetry_quotient_agrees_and_shrinks() {
    for topo in [Topology::ring(4), Topology::ring(6), Topology::star(5)] {
        let full = run(&GreedyDiners, &topo, exclusion_greedy, Reduction::Packed);
        let sym = run(&GreedyDiners, &topo, exclusion_greedy, Reduction::Symmetry);
        assert!(full.verified() && sym.verified(), "{}", topo.name());
        assert_eq!(full.deadlocks == 0, sym.deadlocks == 0);
        assert!(
            sym.states < full.states,
            "{}: {} vs {}",
            topo.name(),
            sym.states,
            full.states
        );
    }
}

#[test]
fn hygienic_symmetry_quotient_agrees_and_shrinks() {
    let exclusion = |snap: &Snapshot<'_, HygienicDiners>| {
        snap.topo.edges().iter().all(|&(a, b)| {
            !(*snap.state.local(a) == Phase::Eating && *snap.state.local(b) == Phase::Eating)
        })
    };
    for topo in [Topology::ring(4), Topology::line(4)] {
        let full = run(&HygienicDiners, &topo, exclusion, Reduction::Packed);
        let sym = run(&HygienicDiners, &topo, exclusion, Reduction::Symmetry);
        assert_eq!(full.violation.is_some(), sym.violation.is_some());
        assert_eq!(full.truncated, sym.truncated);
        assert_eq!(full.deadlocks == 0, sym.deadlocks == 0);
        assert!(
            sym.states < full.states,
            "{}: {} vs {}",
            topo.name(),
            sym.states,
            full.states
        );
    }
}

#[test]
fn greedy_violation_traces_agree_between_representations() {
    // "p0 never eats" is *not* symmetric, so only Packed-vs-None
    // comparison is legitimate here — and they must be bit-identical.
    let p0_eats =
        |snap: &Snapshot<'_, GreedyDiners>| *snap.state.local(ProcessId(0)) != Phase::Eating;
    let topo = Topology::ring(5);
    let cloned = run(&GreedyDiners, &topo, p0_eats, Reduction::None);
    let packed = run(&GreedyDiners, &topo, p0_eats, Reduction::Packed);
    assert!(cloned.violation.is_some());
    assert_eq!(cloned.violation, packed.violation);
    assert_eq!(cloned.states, packed.states);
    assert_eq!(cloned.transitions, packed.transitions);
}

/// Width-fit audit for the baseline codecs: every value of the
/// corruptible domain encodes within its declared bit width (an
/// overflow would silently corrupt the neighboring packed field), and
/// the 3-bit hygienic fork variable round-trips through all 8 of its
/// combinations on every edge.
#[test]
fn baseline_fields_fit_their_declared_widths() {
    use diners_sim::algorithm::Algorithm;
    use diners_sim::codec::StateCodec;
    use diners_sim::graph::EdgeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let fits = |v: u64, bits: u32| bits >= 64 || v >> bits == 0;
    for topo in families() {
        // Greedy: 2-bit phases, zero-width edges.
        let g = GreedyDiners;
        assert_eq!(g.local_bits(&topo), 2);
        assert_eq!(g.edge_bits(&topo), 0);
        let mut rng = StdRng::seed_from_u64(1);
        for p in topo.processes() {
            for phase in [Phase::Thinking, Phase::Hungry, Phase::Eating] {
                let bits = g.encode_local(&topo, p, &phase);
                assert!(fits(bits, 2));
                assert_eq!(g.decode_local(&topo, p, bits), phase);
            }
            for _ in 0..100 {
                let phase = g.corrupt_local(&mut rng, &topo, p);
                assert!(fits(g.encode_local(&topo, p, &phase), 2));
            }
        }

        // Hygienic: 2-bit phases, 3-bit fork vars — all 8 combinations.
        let h = HygienicDiners;
        assert_eq!(h.local_bits(&topo), 2);
        assert_eq!(h.edge_bits(&topo), 3);
        for e in 0..topo.edge_count() {
            let e = EdgeId(e);
            let (a, b) = topo.endpoints(e);
            for fork_at in [a, b] {
                for dirty in [false, true] {
                    for req_at in [a, b] {
                        let v = ForkVar {
                            fork_at,
                            dirty,
                            req_at,
                        };
                        let bits = h.encode_edge(&topo, e, &v);
                        assert!(fits(bits, 3), "fork var {bits:#x} overflows");
                        assert_eq!(h.decode_edge(&topo, e, bits), v);
                    }
                }
            }
            for _ in 0..100 {
                let v = h.corrupt_edge(&mut rng, &topo, e);
                assert!(fits(h.encode_edge(&topo, e, &v), 3));
            }
        }
    }
}
