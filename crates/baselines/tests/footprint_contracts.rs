//! Contract certification of the baseline algorithms: greedy and
//! hygienic must certify locality + purity, and their declared
//! `respects_symmetry = true` must survive the commutation check.

use diners_baselines::{GreedyDiners, HygienicDiners};
use diners_sim::footprint::{analyze, AnalysisConfig};
use diners_sim::graph::Topology;

#[test]
fn greedy_certifies_on_ring_and_line() {
    for topo in [Topology::ring(5), Topology::line(4)] {
        let r = analyze(&GreedyDiners, &topo, &AnalysisConfig::quick());
        assert!(
            r.locality.ok(),
            "{}: {:?}",
            topo.name(),
            r.locality.witnesses
        );
        assert!(r.purity.ok(), "{}: {:?}", topo.name(), r.purity.witnesses);
        assert!(
            r.equivariance.matches_declaration(),
            "{}: {:?}",
            topo.name(),
            r.equivariance.witness
        );
        assert!(r.certified());
    }
}

#[test]
fn greedy_equivariance_is_positively_decided() {
    let r = analyze(&GreedyDiners, &Topology::ring(5), &AnalysisConfig::quick());
    assert!(r.equivariance.decidable);
    assert!(r.equivariance.declared && r.equivariance.inferred);
    assert!(r.equivariance.checked > 0);
}

#[test]
fn hygienic_certifies_on_ring_and_line() {
    for topo in [Topology::ring(4), Topology::line(4)] {
        let r = analyze(&HygienicDiners, &topo, &AnalysisConfig::quick());
        assert!(
            r.locality.ok(),
            "{}: {:?}",
            topo.name(),
            r.locality.witnesses
        );
        assert!(r.purity.ok(), "{}: {:?}", topo.name(), r.purity.witnesses);
        assert!(
            r.equivariance.matches_declaration(),
            "{}: {:?}",
            topo.name(),
            r.equivariance.witness
        );
        assert!(r.certified());
    }
}

#[test]
fn hygienic_fork_writes_are_incident_edges_only() {
    let r = analyze(
        &HygienicDiners,
        &Topology::ring(4),
        &AnalysisConfig::quick(),
    );
    // Hygienic passes forks over shared edges; the inferred footprint
    // must bound every edge write to radius 1.
    let writes_edges = r
        .footprints
        .iter()
        .any(|f| f.command.writes_edge && f.command.write_radius == 1);
    assert!(writes_edges, "fork passing should appear in the footprints");
    assert!(r
        .footprints
        .iter()
        .all(|f| f.command.write_radius <= 1 && f.guard.read_radius <= 1));
}
