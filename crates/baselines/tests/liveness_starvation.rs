//! The greedy baseline's planted livelock, found and replayed.
//!
//! `GreedyDiners` is deliberately unfair: it has no priority structure,
//! so a weakly fair daemon can starve a process forever by letting its
//! neighbor monopolize the table. The liveness checker must *find* that
//! divergence as a concrete stem+loop counterexample — and the
//! counterexample must replay move-for-move on a real [`Engine`] driven
//! by a strict [`ScriptedScheduler`], with the victim never eating.
//!
//! This is the negative control for the certification suites in
//! `diners-core`: the same checker that certifies the paper's algorithm
//! convergent proves the unfair baseline divergent.

use diners_baselines::greedy::GreedyDiners;
use diners_sim::algorithm::{Phase, SystemState};
use diners_sim::engine::Engine;
use diners_sim::explore::Reduction;
use diners_sim::fault::Health;
use diners_sim::graph::{ProcessId, Topology};
use diners_sim::liveness::{check_liveness, LivenessConfig};
use diners_sim::scheduler::ScriptedScheduler;

/// `I` = "the victim eats" is avoidable forever on a line(2) under weak
/// fairness: the neighbor loops join→enter→exit, and the victim —
/// disabled whenever the neighbor eats — is never continuously enabled,
/// so fairness never forces it forward. The predicate singles out one
/// process, so it is *not* symmetric: this must run under
/// [`Reduction::Packed`].
#[test]
fn greedy_starves_a_victim_under_weak_fairness() {
    let topo = Topology::line(2);
    let victim = ProcessId(1);
    let initial = SystemState::initial(&GreedyDiners, &topo);
    let report = check_liveness(
        &GreedyDiners,
        &topo,
        initial.clone(),
        &[Health::Live; 2],
        &[true, true],
        |snap| *snap.state.local(victim) == Phase::Eating,
        LivenessConfig {
            reduction: Reduction::Packed,
            ..Default::default()
        },
    );
    assert!(
        !report.certified(),
        "greedy must not certify victim service"
    );
    assert!(!report.truncated, "line(2) greedy graph is tiny");
    let lasso = report.livelock.as_ref().expect("starvation lasso");
    assert!(!lasso.cycle.is_empty());
    assert!(
        lasso.cycle.iter().all(|m| m.pid != victim),
        "the victim must not move in its own starvation cycle"
    );

    // Replay stem + 3 laps of the cycle on a real engine with a strict
    // scripted daemon: every scripted move must be enabled exactly when
    // scheduled, and the victim must never reach Eating.
    let mut script = lasso.stem.clone();
    for _ in 0..3 {
        script.extend_from_slice(&lasso.cycle);
    }
    let steps = script.len() as u64;
    let mut engine = Engine::builder(GreedyDiners, topo)
        .scheduler(ScriptedScheduler::new(script))
        .build();
    let summary = engine.run(steps);
    assert_eq!(summary.executed, steps, "every scripted move must fire");
    assert_eq!(
        engine.metrics().eats_of(victim),
        0,
        "victim never eats along the counterexample"
    );
    assert_eq!(engine.metrics().violation_step_count(), 0);
}

/// The flip side, certified: "someone eats" *is* reached by every
/// weakly fair greedy execution — below `I` the phases only move
/// Thinking→Hungry, so the `¬I` region is a DAG with all exits into
/// `I`, and the checker proves it (no fair cycle, no stuck state). This
/// predicate is symmetric, so the symmetry quotient must agree with the
/// exact search.
#[test]
fn greedy_certifies_service_for_somebody() {
    let topo = Topology::line(2);
    for reduction in [Reduction::Packed, Reduction::Symmetry] {
        let initial = SystemState::initial(&GreedyDiners, &topo);
        let report = check_liveness(
            &GreedyDiners,
            &topo,
            initial,
            &[Health::Live; 2],
            &[true, true],
            |snap| snap.state.locals().contains(&Phase::Eating),
            LivenessConfig {
                reduction,
                ..Default::default()
            },
        );
        assert!(
            report.certified(),
            "{reduction:?}: livelock={:?} stuck={:?}",
            report.livelock,
            report.stuck
        );
        assert!(report.bad_states > 0);
        if reduction == Reduction::Symmetry {
            assert_eq!(report.group_order, 2, "line(2) has the swap symmetry");
        }
    }
}
