//! Integration: the §4 message-passing transformation, driven through
//! the umbrella API on both runtimes.

use std::time::Duration;

use malicious_diners::mp::{SimNet, ThreadRuntime};
use malicious_diners::sim::graph::{ProcessId, Topology};
use malicious_diners::sim::FaultPlan;

#[test]
fn simnet_serves_everyone_safely() {
    let mut net = SimNet::new(Topology::grid(3, 2), FaultPlan::none(), 11);
    net.run(60_000);
    for p in net.topology().processes() {
        assert!(net.meals_of(p) > 0, "{p} never ate");
    }
    assert_eq!(net.violation_steps(), 0);
}

#[test]
fn simnet_stabilizes_from_arbitrary_states() {
    for seed in 0..3 {
        let mut net = SimNet::new(
            Topology::ring(6),
            FaultPlan::new().from_arbitrary_state(),
            seed,
        );
        net.run(80_000);
        if let Some(last) = net.last_violation() {
            assert!(last < 30_000, "seed {seed}: late violation at {last}");
        }
        let served = net
            .topology()
            .processes()
            .filter(|&p| net.meals_in_window(p, 40_000, net.step_count()) > 0)
            .count();
        assert_eq!(served, 6, "seed {seed}: {served}/6 served after settling");
    }
}

#[test]
fn simnet_contains_malicious_crashes() {
    let mut net = SimNet::new(
        Topology::line(7),
        FaultPlan::new().malicious_crash(1_000, 0, 8),
        4,
    );
    net.run(30_000);
    let since = net.step_count();
    net.run(50_000);
    assert!(net.is_dead(ProcessId(0)));
    for p in 3..7 {
        assert!(
            net.meals_in_window(ProcessId(p), since, net.step_count()) > 0,
            "p{p} starved though at distance >= 3"
        );
    }
}

#[test]
fn thread_runtime_agrees_with_simnet() {
    let rt = ThreadRuntime::spawn(Topology::ring(5), Duration::from_micros(200), 9);
    let violations = rt.observe(Duration::from_millis(300), Duration::from_micros(100));
    assert_eq!(violations, 0, "sampled live-pair eating");
    for p in rt.topology().processes() {
        assert!(rt.meals_of(p) > 0, "{p} starved under threads");
    }
    rt.shutdown();
}

#[test]
fn thread_runtime_survives_benign_crash() {
    let rt = ThreadRuntime::spawn(Topology::line(4), Duration::from_micros(200), 10);
    std::thread::sleep(Duration::from_millis(50));
    rt.crash(ProcessId(0));
    std::thread::sleep(Duration::from_millis(50));
    let mark = rt.meals_of(ProcessId(3));
    std::thread::sleep(Duration::from_millis(300));
    assert!(rt.is_dead(ProcessId(0)));
    assert!(
        rt.meals_of(ProcessId(3)) > mark,
        "the far end must keep eating after a benign crash"
    );
    rt.shutdown();
}
