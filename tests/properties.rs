//! Property-based tests: the paper's invariants over randomized
//! topologies, fault plans and schedules.

use proptest::prelude::*;

use malicious_diners::core::predicates::{self, Invariant, NoLiveCycles};
use malicious_diners::core::redgreen::{affected_radius, Colors};
use malicious_diners::core::MaliciousCrashDiners;
use malicious_diners::sim::graph::Topology;
use malicious_diners::sim::predicate::StatePredicate;
use malicious_diners::sim::scheduler::{
    Adversary, AdversarialScheduler, LeastRecentScheduler, RandomScheduler, RoundRobinScheduler,
    Scheduler,
};
use malicious_diners::sim::{Engine, FaultPlan};

fn arb_topology() -> impl Strategy<Value = Topology> {
    (4usize..12, any::<u64>()).prop_flat_map(|(n, seed)| {
        prop_oneof![
            Just(Topology::ring(n)),
            Just(Topology::line(n)),
            Just(Topology::binary_tree(n)),
            Just(Topology::random_connected(n, 0.25, seed)),
        ]
    })
}

fn arb_scheduler() -> impl Strategy<Value = Boxed> {
    (0usize..4, any::<u64>()).prop_map(|(kind, seed)| {
        Boxed(match kind {
            0 => Box::new(RandomScheduler::new(seed)) as Box<dyn Scheduler>,
            1 => Box::new(LeastRecentScheduler::new()),
            2 => Box::new(RoundRobinScheduler::new()),
            _ => Box::new(AdversarialScheduler::new(Adversary::Newest, 32, seed)),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, .. ProptestConfig::default()
    })]

    /// The red set never reaches beyond distance 2 of the dead set, in
    /// any state whatsoever (arbitrary corruption, arbitrary deaths).
    #[test]
    fn red_radius_at_most_two_in_any_state(
        topo in arb_topology(),
        seed in any::<u64>(),
        victims in prop::collection::vec(0usize..12, 0..3),
    ) {
        let mut plan = FaultPlan::new().from_arbitrary_state();
        for v in victims {
            plan = plan.initially_dead(v % topo.len());
        }
        let engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
            .faults(plan)
            .seed(seed)
            .build();
        if let Some(r) = affected_radius(&engine.snapshot()) {
            prop_assert!(r <= 2, "red radius {r}");
        }
    }

    /// From an arbitrary state, under any daemon, the corrected-bound
    /// invariant is reached and two live neighbors never eat afterwards.
    #[test]
    fn stabilization_under_every_daemon(
        topo in arb_topology(),
        sched in arb_scheduler(),
        seed in any::<u64>(),
    ) {
        let alg = MaliciousCrashDiners::corrected();
        let inv = Invariant::for_algorithm(&alg);
        let mut engine = Engine::builder(alg, topo)
            .scheduler(sched)
            .faults(FaultPlan::new().from_arbitrary_state())
            .seed(seed)
            .build();
        let converged = engine.convergence_step(&inv, 60_000);
        prop_assert!(converged.is_some(), "no convergence");
        let since = engine.step_count();
        engine.run(5_000);
        let late = engine
            .metrics()
            .violation_steps()
            .iter()
            .filter(|&&s| s >= since)
            .count();
        prop_assert_eq!(late, 0);
    }

    /// NC is closed: once the live priority graph is acyclic it stays so
    /// (exits only ever direct all edges toward the exiting process).
    #[test]
    fn nc_is_closed(
        topo in arb_topology(),
        seed in any::<u64>(),
    ) {
        let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
            .scheduler(RandomScheduler::new(seed))
            .faults(FaultPlan::new().from_arbitrary_state())
            .seed(seed)
            .build();
        let mut was_acyclic = false;
        for _ in 0..4_000 {
            engine.step();
            let acyclic = NoLiveCycles.holds(&engine.snapshot());
            if was_acyclic {
                prop_assert!(acyclic, "NC was violated after holding");
            }
            was_acyclic = acyclic;
        }
    }

    /// The E predicate converges: the number of live eating pairs never
    /// increases, and hits zero.
    #[test]
    fn eating_pairs_drain_monotonically(
        topo in arb_topology(),
        seed in any::<u64>(),
    ) {
        let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
            .scheduler(RandomScheduler::new(seed))
            .faults(FaultPlan::new().from_arbitrary_state())
            .seed(seed)
            .build();
        let (mut prev, _) = engine.eating_pairs();
        for _ in 0..4_000 {
            engine.step();
            let (now, _) = engine.eating_pairs();
            prop_assert!(now <= prev, "eating pairs increased {prev} -> {now}");
            prev = now;
        }
        prop_assert_eq!(prev, 0, "eating pairs never drained");
    }

    /// Green processes are exactly the ones that keep eating; red ones
    /// never eat (after the system settles with some processes dead).
    #[test]
    fn colors_predict_service(
        seed in any::<u64>(),
        victim in 0usize..10,
    ) {
        let topo = Topology::ring(10);
        let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
            .scheduler(RandomScheduler::new(seed))
            .faults(FaultPlan::new().malicious_crash(200, victim, 8))
            .seed(seed)
            .build();
        engine.run(20_000);
        let since = engine.step_count();
        engine.run(30_000);
        let colors = Colors::compute(&engine.snapshot());
        for p in engine.topology().processes() {
            if engine.is_dead(p) {
                continue;
            }
            let meals = engine.metrics().eats_in_window(p, since, engine.step_count());
            if colors.is_red(p) {
                prop_assert_eq!(meals, 0, "red {} ate", p);
            } else {
                prop_assert!(meals > 0, "green {} starved", p);
            }
        }
        // Safety after the malicious window, always.
        let snap = engine.snapshot();
        prop_assert!(predicates::e_holds(&snap));
    }
}

// -- helpers ---------------------------------------------------------------

/// Adapter letting a generated `Box<dyn Scheduler>` be installed through
/// the builder's `impl Scheduler` parameter.
struct Boxed(Box<dyn Scheduler>);

impl Scheduler for Boxed {
    fn pick(
        &mut self,
        step: u64,
        enabled: &[malicious_diners::sim::scheduler::EnabledMove],
    ) -> usize {
        self.0.pick(step, enabled)
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

impl std::fmt::Debug for Boxed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Boxed({})", self.0.name())
    }
}
