//! Property-style tests: the paper's invariants over randomized
//! topologies, fault plans and schedules.
//!
//! Each property sweeps a deterministic, seeded sample of the
//! configuration space (topology family x scheduler x seed) rather than
//! using an external property-testing framework — the build environment
//! is offline, and seeded sweeps keep every failure exactly reproducible
//! from the printed case description alone.

use rand::Rng;

use malicious_diners::core::predicates::{self, Invariant, NoLiveCycles};
use malicious_diners::core::redgreen::{affected_radius, Colors};
use malicious_diners::core::MaliciousCrashDiners;
use malicious_diners::sim::graph::Topology;
use malicious_diners::sim::predicate::StatePredicate;
use malicious_diners::sim::rng;
use malicious_diners::sim::scheduler::{
    AdversarialScheduler, Adversary, LeastRecentScheduler, RandomScheduler, RoundRobinScheduler,
    Scheduler,
};
use malicious_diners::sim::{Engine, FaultPlan};

/// Cases per property (mirrors the old proptest `cases: 24`).
const CASES: u64 = 24;

/// A deterministically sampled topology, labeled for failure messages.
fn sample_topology(r: &mut rand::rngs::StdRng) -> Topology {
    let n = r.gen_range(4usize..12);
    let seed = r.gen::<u64>();
    match r.gen_range(0..4) {
        0 => Topology::ring(n),
        1 => Topology::line(n),
        2 => Topology::binary_tree(n),
        _ => Topology::random_connected(n, 0.25, seed),
    }
}

/// A deterministically sampled scheduler.
fn sample_scheduler(r: &mut rand::rngs::StdRng) -> Box<dyn Scheduler> {
    let seed = r.gen::<u64>();
    match r.gen_range(0..4) {
        0 => Box::new(RandomScheduler::new(seed)),
        1 => Box::new(LeastRecentScheduler::new()),
        2 => Box::new(RoundRobinScheduler::new()),
        _ => Box::new(AdversarialScheduler::new(Adversary::Newest, 32, seed)),
    }
}

/// The red set never reaches beyond distance 2 of the dead set, in any
/// state whatsoever (arbitrary corruption, arbitrary deaths).
#[test]
fn red_radius_at_most_two_in_any_state() {
    for case in 0..CASES {
        let mut r = rng::rng(rng::subseed(0xA1, case));
        let topo = sample_topology(&mut r);
        let seed = r.gen::<u64>();
        let mut plan = FaultPlan::new().from_arbitrary_state();
        for _ in 0..r.gen_range(0..3) {
            plan = plan.initially_dead(r.gen_range(0..topo.len()));
        }
        let engine = Engine::builder(MaliciousCrashDiners::paper(), topo.clone())
            .faults(plan)
            .seed(seed)
            .build();
        if let Some(rad) = affected_radius(&engine.snapshot()) {
            assert!(rad <= 2, "case {case} ({}): red radius {rad}", topo.name());
        }
    }
}

/// From an arbitrary state, under any daemon, the corrected-bound
/// invariant is reached and two live neighbors never eat afterwards.
#[test]
fn stabilization_under_every_daemon() {
    for case in 0..CASES {
        let mut r = rng::rng(rng::subseed(0xA2, case));
        let topo = sample_topology(&mut r);
        let sched = Boxed(sample_scheduler(&mut r));
        let seed = r.gen::<u64>();
        let desc = format!("case {case} ({}, {})", topo.name(), sched.name());
        let alg = MaliciousCrashDiners::corrected();
        let inv = Invariant::for_algorithm(&alg);
        let mut engine = Engine::builder(alg, topo)
            .scheduler(sched)
            .faults(FaultPlan::new().from_arbitrary_state())
            .seed(seed)
            .build();
        let converged = engine.convergence_step(&inv, 60_000);
        assert!(converged.is_some(), "{desc}: no convergence");
        let since = engine.step_count();
        engine.run(5_000);
        let late = engine
            .metrics()
            .violation_steps()
            .iter()
            .filter(|&&s| s >= since)
            .count();
        assert_eq!(late, 0, "{desc}: {late} violations after convergence");
    }
}

/// NC is closed: once the live priority graph is acyclic it stays so
/// (exits only ever direct all edges toward the exiting process).
#[test]
fn nc_is_closed() {
    for case in 0..CASES {
        let mut r = rng::rng(rng::subseed(0xA3, case));
        let topo = sample_topology(&mut r);
        let seed = r.gen::<u64>();
        let desc = format!("case {case} ({})", topo.name());
        let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
            .scheduler(RandomScheduler::new(seed))
            .faults(FaultPlan::new().from_arbitrary_state())
            .seed(seed)
            .build();
        let mut was_acyclic = false;
        for _ in 0..4_000 {
            engine.step();
            let acyclic = NoLiveCycles.holds(&engine.snapshot());
            if was_acyclic {
                assert!(acyclic, "{desc}: NC was violated after holding");
            }
            was_acyclic = acyclic;
        }
    }
}

/// The E predicate converges: the number of live eating pairs never
/// increases, and hits zero.
#[test]
fn eating_pairs_drain_monotonically() {
    for case in 0..CASES {
        let mut r = rng::rng(rng::subseed(0xA4, case));
        let topo = sample_topology(&mut r);
        let seed = r.gen::<u64>();
        let desc = format!("case {case} ({})", topo.name());
        let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
            .scheduler(RandomScheduler::new(seed))
            .faults(FaultPlan::new().from_arbitrary_state())
            .seed(seed)
            .build();
        let (mut prev, _) = engine.eating_pairs();
        for _ in 0..4_000 {
            engine.step();
            let (now, _) = engine.eating_pairs();
            assert!(
                now <= prev,
                "{desc}: eating pairs increased {prev} -> {now}"
            );
            prev = now;
        }
        assert_eq!(prev, 0, "{desc}: eating pairs never drained");
    }
}

/// Green processes are exactly the ones that keep eating; red ones never
/// eat (after the system settles with some processes dead).
#[test]
fn colors_predict_service() {
    for case in 0..CASES {
        let mut r = rng::rng(rng::subseed(0xA5, case));
        let seed = r.gen::<u64>();
        let victim = r.gen_range(0usize..10);
        let desc = format!("case {case} (victim {victim})");
        let topo = Topology::ring(10);
        let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
            .scheduler(RandomScheduler::new(seed))
            .faults(FaultPlan::new().malicious_crash(200, victim, 8))
            .seed(seed)
            .build();
        engine.run(20_000);
        let since = engine.step_count();
        engine.run(30_000);
        let colors = Colors::compute(&engine.snapshot());
        for p in engine.topology().processes() {
            if engine.is_dead(p) {
                continue;
            }
            let meals = engine
                .metrics()
                .eats_in_window(p, since, engine.step_count());
            if colors.is_red(p) {
                assert_eq!(meals, 0, "{desc}: red {p} ate");
            } else {
                assert!(meals > 0, "{desc}: green {p} starved");
            }
        }
        // Safety after the malicious window, always.
        let snap = engine.snapshot();
        assert!(predicates::e_holds(&snap), "{desc}: E violated at the end");
    }
}

// -- helpers ---------------------------------------------------------------

/// Adapter letting a sampled `Box<dyn Scheduler>` be installed through
/// the builder's `impl Scheduler` parameter.
struct Boxed(Box<dyn Scheduler>);

impl Scheduler for Boxed {
    fn pick(
        &mut self,
        step: u64,
        enabled: &[malicious_diners::sim::scheduler::EnabledMove],
    ) -> usize {
        self.0.pick(step, enabled)
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}
