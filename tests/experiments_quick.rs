//! Integration: the entire experiment suite runs end-to-end at quick
//! scale and produces well-formed tables (this is the same code path as
//! the `exp-*` binaries used to regenerate EXPERIMENTS.md).

use diners_bench::experiments;
use diners_bench::Scale;

fn tiny() -> Scale {
    Scale {
        seeds: 1,
        horizon: 60_000,
        settle: 4_000,
        window: 10_000,
        sizes: &[8],
    }
}

#[test]
fn fig2_table() {
    let (report, table) = experiments::fig2::run();
    assert!(report.all_reproduced());
    assert!(table.render().contains("radius = 2"));
}

#[test]
fn t1_stabilization_tables() {
    let t = experiments::stabilization::run(&tiny());
    assert_eq!(t.len(), 4, "four topology families at one size");
    let dense = experiments::stabilization::run_dense(&tiny());
    let csv = dense.to_csv();
    // The paper bound never stabilizes on the complete graph.
    assert!(csv.contains("complete(n=6),1,0/1"), "csv:\n{csv}");
}

#[test]
fn t2_locality_table() {
    let t = experiments::locality::run(&tiny());
    assert_eq!(t.len(), 1);
    let csv = t.to_csv();
    // First data row: n=8, paper radii <= 2, no-threshold radius ~n-1.
    let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
    let paper: u32 = row[1].parse().unwrap();
    let analytic: u32 = row[2].parse().unwrap();
    let ablation: u32 = row[3].parse().unwrap();
    assert!(paper <= 2, "paper radius {paper}");
    assert!(analytic <= 2, "analytic radius {analytic}");
    assert!(ablation >= 6, "ablation radius {ablation}");
}

#[test]
fn t3_malicious_table() {
    let t = experiments::malicious::run(&tiny());
    let csv = t.to_csv();
    for line in csv.lines().skip(1) {
        assert!(
            line.ends_with(",yes"),
            "an MCA configuration failed: {line}"
        );
    }
}

#[test]
fn t4_cycles_table() {
    let t = experiments::cycles::run(&tiny());
    let csv = t.to_csv();
    let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
    assert_ne!(row[2], "-", "cycle must be broken (median)");
    assert_eq!(row[6], "0/1", "the wave daemon must preserve the cycle");
    assert_eq!(row[7], "0", "no meals under the wave daemon");
}

#[test]
fn t5_throughput_table() {
    let t = experiments::throughput::run(&tiny());
    // 6 algorithms x 4 topologies.
    assert_eq!(t.len(), 24);
    for line in t.to_csv().lines().skip(1) {
        assert!(line.ends_with(",0"), "violations column must be 0: {line}");
    }
}

#[test]
fn t6_masking_table() {
    let t = experiments::masking::run(&tiny());
    assert!(t.len() >= 3, "at least distances 1..=3 present");
}

#[test]
fn t7_message_passing_table() {
    let t = experiments::message_passing::run(&tiny());
    let csv = t.to_csv();
    assert!(csv.contains("legitimate start"));
    assert!(csv.contains("thread runtime"));
    // Legitimate starts never violate exclusion.
    for line in csv.lines().filter(|l| l.starts_with("legitimate start")) {
        assert!(line.ends_with(",none"), "{line}");
    }
}

#[test]
fn t9_chaos_table() {
    // The dense random family needs post-outage runway and a full-length
    // measurement window under heavy noise: service still happens, just
    // stretched.
    let scale = Scale {
        settle: 10_000,
        window: 20_000,
        ..tiny()
    };
    let (t, totals) = experiments::chaos::sweep(&scale);
    assert_eq!(t.len(), 4, "four topology families");
    assert!(totals.runs >= 12, "too few chaos runs: {}", totals.runs);
    assert!(totals.clean(), "chaos sweep failed:\n{}", t.render());
}
