//! Network-adversary properties: exclusion is never violated under any
//! combination of link faults, and service resumes once outages heal —
//! on the deterministic SimNet and on the real thread-per-node runtime.
//!
//! The combination sweep is the property-style core: every subset of
//! {loss, duplication, delay, reorder, outages} x 8 seeds, all asserting
//! zero live-pair exclusion violations from a legitimate start. The
//! per-fault tests then exercise each fault alone, with a liveness
//! check, under both runtimes.

use std::time::Duration;

use malicious_diners::mp::{AdversaryPlan, SimNet, ThreadRuntime};
use malicious_diners::sim::graph::{ProcessId, Topology};
use malicious_diners::sim::FaultPlan;

const SEEDS: u64 = 8;

/// Build the plan for one subset of the fault vocabulary.
fn combo_plan(bits: u32) -> AdversaryPlan {
    let mut plan = AdversaryPlan::new();
    if bits & 1 != 0 {
        plan = plan.loss(150);
    }
    if bits & 2 != 0 {
        plan = plan.duplication(200);
    }
    if bits & 4 != 0 {
        plan = plan.delay(300, 12);
    }
    if bits & 8 != 0 {
        plan = plan.reorder(200);
    }
    if bits & 16 != 0 {
        plan = plan
            .cut_link(ProcessId(0), ProcessId(1), 2_000, 5_000)
            .isolate(ProcessId(3), 6_000, 9_000);
    }
    plan
}

#[test]
fn exclusion_holds_under_every_fault_combination() {
    for bits in 0..32u32 {
        let plan = combo_plan(bits);
        for seed in 0..SEEDS {
            let mut net =
                SimNet::with_adversary(Topology::ring(6), FaultPlan::none(), plan.clone(), seed);
            net.run(20_000);
            assert_eq!(
                net.violation_steps(),
                0,
                "combo {bits:#07b} ({}) seed {seed} broke exclusion",
                plan.describe()
            );
        }
    }
}

/// SimNet, one fault at a time: safety over the whole run, and every
/// process served in the final window.
fn simnet_fault_check(plan: AdversaryPlan, seed: u64) {
    let describe = plan.describe();
    let mut net = SimNet::with_adversary(Topology::ring(6), FaultPlan::none(), plan, seed);
    let healed = net.adversary_plan().healed_by();
    net.run(15_000.max(healed));
    let since = net.step_count();
    net.run(15_000);
    assert_eq!(net.violation_steps(), 0, "{describe}: exclusion broken");
    for p in net.topology().processes() {
        assert!(
            net.meals_in_window(p, since, net.step_count()) > 0,
            "{describe}: {p} starved"
        );
    }
}

#[test]
fn simnet_duplication_is_harmless() {
    for seed in 0..SEEDS {
        simnet_fault_check(AdversaryPlan::new().duplication(400), seed);
    }
}

#[test]
fn simnet_bounded_delay_is_harmless() {
    for seed in 0..SEEDS {
        simnet_fault_check(AdversaryPlan::new().delay(1000, 24), seed);
    }
}

#[test]
fn simnet_reordering_is_harmless() {
    for seed in 0..SEEDS {
        simnet_fault_check(AdversaryPlan::new().reorder(400), seed);
    }
}

#[test]
fn simnet_partition_heals() {
    for seed in 0..SEEDS {
        simnet_fault_check(
            AdversaryPlan::new()
                .cut_link(ProcessId(1), ProcessId(2), 0, 8_000)
                .isolate(ProcessId(4), 1_000, 6_000),
            seed,
        );
    }
}

/// ThreadRuntime, one fault at a time: sampled exclusion over the run,
/// and every node served by the end.
fn runtime_fault_check(plan: AdversaryPlan, seed: u64) {
    let describe = plan.describe();
    let rt = ThreadRuntime::spawn_with_adversary(
        Topology::ring(4),
        Duration::from_micros(200),
        plan,
        seed,
    );
    let violations = rt.observe(Duration::from_millis(500), Duration::from_micros(100));
    assert_eq!(violations, 0, "{describe}: sampled exclusion broken");
    for p in rt.topology().processes() {
        assert!(rt.meals_of(p) > 0, "{describe}: {p} starved under threads");
    }
    rt.shutdown();
}

#[test]
fn runtime_duplication_is_harmless() {
    runtime_fault_check(AdversaryPlan::new().duplication(400), 21);
}

#[test]
fn runtime_bounded_delay_is_harmless() {
    runtime_fault_check(AdversaryPlan::new().delay(500, 6), 22);
}

#[test]
fn runtime_reordering_is_harmless() {
    runtime_fault_check(AdversaryPlan::new().reorder(400), 23);
}

#[test]
fn runtime_partition_heals() {
    // The cut covers each endpoint's first ~150 ticks (~30ms of the
    // 500ms observation), then heals; liveness is asserted at the end.
    runtime_fault_check(
        AdversaryPlan::new().cut_link(ProcessId(0), ProcessId(1), 0, 150),
        24,
    );
}
