//! Integration: the paper's Figure 2 reproduces end-to-end through the
//! public umbrella API.

use malicious_diners::core::figures::{fig2_engine, fig2_topology, run_figure2, A, B, C, D, E, G};
use malicious_diners::core::redgreen::{affected_radius, Colors};
use malicious_diners::sim::Phase;

#[test]
fn figure2_reproduces_every_depicted_property() {
    let report = run_figure2();
    assert!(report.all_reproduced(), "{report:#?}");
}

#[test]
fn figure2_topology_matches_the_paper() {
    let topo = fig2_topology();
    assert_eq!(topo.len(), 7);
    assert_eq!(topo.diameter(), 3, "the paper's example states D = 3");
}

#[test]
fn figure2_containment_radius_is_exactly_two() {
    let mut engine = fig2_engine();
    engine.run(5);
    let snap = engine.snapshot();
    assert_eq!(affected_radius(&snap), Some(2));
    let colors = Colors::compute(&snap);
    assert!(colors.is_red(A), "dead a");
    assert!(colors.is_red(B), "blocked hungry b");
    assert!(colors.is_red(C), "blocked thinking c");
    assert!(colors.is_red(D), "yielded d, distance 2");
    assert!(colors.is_green(E));
    assert!(colors.is_green(G));
}

#[test]
fn figure2_long_run_keeps_the_far_side_alive() {
    // Continue far beyond the scripted prefix under the fair fallback
    // daemon: the green processes keep eating forever, the red ones
    // never eat, and no two live neighbors ever eat together.
    let mut engine = fig2_engine();
    engine.run(40_000);
    assert_eq!(engine.metrics().violation_step_count(), 0);
    assert_eq!(engine.metrics().eats_of(B), 0, "b is blocked for good");
    assert_eq!(engine.metrics().eats_of(C), 0, "c is blocked for good");
    for p in [E, G] {
        assert!(engine.metrics().eats_of(p) > 10, "{p} should keep eating");
    }
    assert_eq!(engine.phase_of(A), Phase::Eating, "the dead eater persists");
}
