//! Integration: each theorem of the paper exercised across crates
//! through the umbrella API (reduced scales; the full sweeps live in the
//! `diners-bench` experiment binaries).

use malicious_diners::baselines;
use malicious_diners::core::harness::stabilization_steps;
use malicious_diners::core::locality::measure_window;
use malicious_diners::core::mca::McaChecker;
use malicious_diners::core::predicates::{self, Invariant};
use malicious_diners::core::{DepthBound, MaliciousCrashDiners, Variant};
use malicious_diners::sim::graph::{ProcessId, Topology};
use malicious_diners::sim::predicate::StatePredicate;
use malicious_diners::sim::scheduler::RandomScheduler;
use malicious_diners::sim::{Algorithm, Engine, FaultPlan, Phase, SystemState};

/// Theorem 1 (with the corrected bound): stabilization from arbitrary
/// states on several topologies.
#[test]
fn theorem1_stabilization() {
    for topo in [
        Topology::ring(10),
        Topology::grid(3, 3),
        Topology::binary_tree(10),
        Topology::complete(5),
    ] {
        for seed in 0..2 {
            let at = stabilization_steps(
                MaliciousCrashDiners::corrected(),
                topo.clone(),
                seed,
                60_000,
            )
            .unwrap_or_else(|| panic!("{}: seed {seed} did not stabilize", topo.name()));
            assert!(at < 20_000, "{}: late convergence {at}", topo.name());
        }
    }
}

/// Theorem 2 (liveness outside the locality) + Theorem 3 (safety): a
/// benign crash of an eater affects at most distance 2.
#[test]
fn theorems_2_and_3_locality_and_safety() {
    let topo = Topology::grid(4, 4);
    let victim = ProcessId(5);
    let mut state = SystemState::initial(&MaliciousCrashDiners::paper(), &topo);
    for p in topo.processes() {
        state.local_mut(p).phase = Phase::Hungry;
    }
    state.local_mut(victim).phase = Phase::Eating;
    let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
        .initial_state(state)
        .scheduler(RandomScheduler::new(3))
        .faults(FaultPlan::new().initially_dead(victim.index()))
        .seed(3)
        .build();
    engine.run(15_000);
    let report = measure_window(&mut engine, 30_000);
    assert!(
        report.behavioral_radius.unwrap() <= 2,
        "radius {:?}, starved {:?}",
        report.behavioral_radius,
        report.starved
    );
    assert_eq!(engine.metrics().violation_step_count(), 0, "safety");
}

/// Proposition 1 / MCA: malicious crash from an arbitrary initial state.
#[test]
fn proposition1_mca_with_malicious_crash() {
    let mut engine = Engine::builder(MaliciousCrashDiners::paper(), Topology::ring(12))
        .scheduler(RandomScheduler::new(8))
        .faults(
            FaultPlan::new()
                .from_arbitrary_state()
                .malicious_crash(500, 4, 16),
        )
        .seed(8)
        .build();
    let report = McaChecker {
        m: 2,
        settle: 15_000,
        window: 30_000,
    }
    .run(&mut engine);
    assert!(
        report.satisfied,
        "starved {:?}, violations {}",
        report.starved_protected, report.safety_violation_steps
    );
}

/// Lemma 4 / E-predicate: two live neighbors never eat simultaneously
/// once stabilized, for the paper algorithm and every baseline.
#[test]
fn exclusion_across_algorithms() {
    let topo = Topology::ring(8);
    macro_rules! check {
        ($alg:expr) => {{
            let mut e = Engine::builder($alg, topo.clone())
                .scheduler(RandomScheduler::new(5))
                .faults(FaultPlan::new().from_arbitrary_state())
                .seed(5)
                .build();
            e.run(30_000);
            let since = e.step_count();
            e.run(10_000);
            let late = e
                .metrics()
                .violation_steps()
                .iter()
                .filter(|&&s| s > since)
                .count();
            assert_eq!(late, 0, "{} violated exclusion late", e.algorithm().name());
        }};
    }
    check!(MaliciousCrashDiners::paper());
    check!(MaliciousCrashDiners::corrected());
    check!(baselines::no_threshold());
    check!(baselines::GreedyDiners);
    check!(baselines::HygienicDiners);
}

/// The ablations really lose their guarantee (cross-crate sanity).
#[test]
fn ablations_lose_their_guarantees() {
    // no-threshold: a dead eater at the head of an all-hungry chain
    // starves the entire chain.
    let n = 10;
    let topo = Topology::line(n);
    let alg = MaliciousCrashDiners::with_variant(Variant::without_threshold());
    let mut state = SystemState::initial(&alg, &topo);
    for p in topo.processes() {
        state.local_mut(p).phase = Phase::Hungry;
    }
    state.local_mut(ProcessId(0)).phase = Phase::Eating;
    let mut engine = Engine::builder(alg, topo)
        .initial_state(state)
        .scheduler(RandomScheduler::new(2))
        .faults(FaultPlan::new().initially_dead(0))
        .seed(2)
        .build();
    engine.run(10_000);
    let report = measure_window(&mut engine, 30_000);
    assert!(
        report.behavioral_radius.unwrap() >= (n - 2) as u32,
        "expected the whole chain blocked, radius {:?}",
        report.behavioral_radius
    );
}

/// The depth-bound finding: the invariant under the paper's diameter
/// bound is not closed on a ring (it flaps in and out under continuous
/// dining), while the corrected bound is stable.
#[test]
fn invariant_closure_gap_on_rings() {
    let topo = Topology::ring(8);
    let paper_inv = Invariant {
        bound: DepthBound::Diameter,
    };
    let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo.clone())
        .scheduler(RandomScheduler::new(4))
        .seed(4)
        .build();
    let mut holds = 0u64;
    let mut fails = 0u64;
    let mut entries = 0u64;
    let mut prev = false;
    for _ in 0..30_000 {
        engine.step();
        let now = paper_inv.holds(&engine.snapshot());
        if now {
            holds += 1;
        } else {
            fails += 1;
        }
        if now && !prev {
            entries += 1;
        }
        prev = now;
    }
    assert!(holds > 0 && fails > 0, "expected flapping: {holds}/{fails}");
    assert!(
        entries >= 5,
        "I should be entered and left repeatedly (entries: {entries}) — \
         it is not closed under the paper's diameter bound"
    );

    // Corrected bound: after a short prefix, I holds and never breaks.
    let alg = MaliciousCrashDiners::corrected();
    let inv = Invariant::for_algorithm(&alg);
    let mut engine = Engine::builder(alg, topo)
        .scheduler(RandomScheduler::new(4))
        .seed(4)
        .build();
    engine.run(5_000);
    for _ in 0..20_000 {
        engine.step();
        assert!(
            inv.holds(&engine.snapshot()),
            "corrected-bound invariant broke at step {}",
            engine.step_count()
        );
    }
    // And the E predicate specifically never breaks either way.
    assert!(predicates::e_holds(&engine.snapshot()));
}
