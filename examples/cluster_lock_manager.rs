//! A resource-allocation scenario: batch jobs on a small cluster.
//!
//! Each process is a job; two jobs conflict (share an edge) when they
//! need the same exclusive resource (a GPU, a table partition, ...).
//! The diners algorithm *is* the lock manager: `Eating` = holding all of
//! the job's locks. Jobs arrive with a quota of work units (meals) and
//! stop asking once done. One worker maliciously crashes mid-run —
//! modeling a node whose lock agent corrupts its lease state while going
//! down — and the remaining jobs outside its distance-2 neighborhood
//! finish unperturbed.
//!
//! ```sh
//! cargo run --release --example cluster_lock_manager
//! ```

use malicious_diners::core::MaliciousCrashDiners;
use malicious_diners::sim::graph::{ProcessId, Topology};
use malicious_diners::sim::scheduler::RandomScheduler;
use malicious_diners::sim::workload::QuotaWorkload;
use malicious_diners::sim::{Engine, FaultPlan};

fn main() {
    // 12 jobs; conflicts from shared resources (hand-built, connected).
    let conflicts = [
        (0, 1),   // gpu-0
        (0, 2),   // gpu-0
        (1, 2),   // scratch disk A
        (2, 3),   // table: users
        (3, 4),   // table: events
        (4, 5),   // gpu-1
        (4, 6),   // gpu-1
        (5, 6),   // scratch disk B
        (6, 7),   // table: sessions
        (7, 8),   // gpu-2
        (8, 9),   // table: metrics
        (9, 10),  // scratch disk C
        (10, 11), // gpu-3
        (3, 7),   // shared cache line
    ];
    let topo = Topology::from_edges(12, conflicts).expect("conflict graph is valid");
    println!(
        "lock manager for 12 jobs, {} conflicts, diameter {}",
        topo.edge_count(),
        topo.diameter()
    );

    let quota = 200u64;
    let victim = 4usize;
    let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
        .workload(QuotaWorkload::uniform(12, quota))
        .scheduler(RandomScheduler::new(9))
        .faults(FaultPlan::new().malicious_crash(5_000, victim, 12))
        .seed(9)
        .build();

    println!("each job needs {quota} critical sections; job {victim} crashes at step 5,000\n");
    engine.run(200_000);

    let mut finished = 0;
    for p in engine.topology().processes() {
        let meals = engine.metrics().eats_of(p);
        let dist = engine.topology().distance(p, ProcessId(victim));
        let note = if engine.is_dead(p) {
            " [crashed]".to_string()
        } else if meals >= quota {
            finished += 1;
            " done".to_string()
        } else {
            format!(" BLOCKED at {meals} (distance {dist} from crash)")
        };
        println!("  job {p:>3}: {meals:>4}/{quota}{note}");
    }

    println!("\n{finished}/11 surviving jobs finished their quota");
    println!(
        "lock-safety violations: {} steps, last at step {:?} — only while the \
         crashing agent was actively corrupting its lease state",
        engine.metrics().violation_step_count(),
        engine.metrics().last_violation_step(),
    );
    if let Some(last) = engine.metrics().last_violation_step() {
        assert!(
            last < 20_000,
            "violations must not outlive the malicious window"
        );
    }

    // Everything outside distance 2 of the crash must have finished.
    for p in engine.topology().processes() {
        if !engine.is_dead(p) && engine.topology().distance(p, ProcessId(victim)) > 2 {
            assert!(
                engine.metrics().eats_of(p) >= quota,
                "{p} outside the locality radius did not finish"
            );
        }
    }
    println!("all jobs at distance > 2 from the crash completed. ✓");
}
