//! Replay the paper's Figure 2 — the worked example of a malicious
//! crash being contained — then rerun the same topology under a random
//! daemon to show the containment is not an artifact of the scripted
//! schedule.
//!
//! ```sh
//! cargo run --release --example malicious_crash_demo
//! ```

use malicious_diners::core::figures::{self, run_figure2, NAMES};
use malicious_diners::core::locality::measure_window;
use malicious_diners::core::redgreen::Colors;
use malicious_diners::core::MaliciousCrashDiners;
use malicious_diners::sim::scheduler::RandomScheduler;
use malicious_diners::sim::{Engine, FaultPlan, Phase};

fn main() {
    println!("=== Figure 2, exactly as depicted ===\n");
    let report = run_figure2();
    for line in &report.narrative {
        println!("  {line}");
    }
    println!();
    println!("  e eats after the cycle breaks : {}", report.e_eats);
    println!(
        "  b blocked hungry (distance 1) : {}",
        report.b_still_hungry
    );
    println!(
        "  c blocked thinking (distance 1): {}",
        report.c_still_thinking
    );
    println!("  d yielded via leave (distance 2): {}", report.d_yielded);
    println!(
        "  depth:g exceeded D (cycle!)    : {}",
        report.g_detected_cycle
    );
    println!(
        "  affected radius               : {:?}",
        report.affected_radius
    );
    assert!(report.all_reproduced());

    println!("\n=== Same topology, random daemon, long run ===\n");
    let topo = figures::fig2_topology();
    let state = figures::fig2_initial_state(&topo);
    let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
        .initial_state(state)
        .scheduler(RandomScheduler::new(7))
        .faults(FaultPlan::new().initially_dead(0))
        .seed(7)
        .build();
    engine.run(20_000);
    let rep = measure_window(&mut engine, 30_000);

    let colors = Colors::compute(&engine.snapshot());
    for p in engine.topology().processes() {
        let name = NAMES[p.index()];
        let status = if engine.is_dead(p) {
            "dead"
        } else if colors.is_red(p) {
            "red (blocked by the crash)"
        } else {
            "green"
        };
        println!(
            "  {name}: {} meals, phase {}, {status}",
            engine.metrics().eats_of(p),
            engine.phase_of(p)
        );
    }
    println!(
        "\n  starved processes: {:?} — radius {:?} (paper: <= 2)",
        rep.starved
            .iter()
            .map(|p| NAMES[p.index()])
            .collect::<Vec<_>>(),
        rep.behavioral_radius
    );
    assert!(rep.behavioral_radius.unwrap_or(0) <= 2);
    assert_eq!(engine.phase_of(figures::A), Phase::Eating, "a died eating");
}
