//! Quickstart: run the paper's algorithm on a ring, inject a malicious
//! crash, and watch the guarantees hold.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use malicious_diners::core::locality::starvation_radius;
use malicious_diners::core::redgreen::Colors;
use malicious_diners::core::MaliciousCrashDiners;
use malicious_diners::sim::graph::Topology;
use malicious_diners::sim::scheduler::RandomScheduler;
use malicious_diners::sim::{Engine, FaultPlan};

fn main() {
    let n = 16;
    let victim = 5;
    let topo = Topology::ring(n);
    println!(
        "{} philosophers on a {} (diameter {})",
        n,
        topo.name(),
        topo.diameter()
    );

    let mut engine = Engine::builder(MaliciousCrashDiners::paper(), topo)
        .scheduler(RandomScheduler::new(42))
        .faults(FaultPlan::new().malicious_crash(2_000, victim, 16))
        .seed(42)
        .record_trace(true)
        .build();

    println!("running 50,000 steps; p{victim} maliciously crashes at step 2,000 ...\n");
    engine.run(10_000);
    let after_fault = engine.step_count();
    engine.run(40_000);

    println!("meals per process (p{victim} crashed):");
    for p in engine.topology().processes() {
        let dead = if engine.is_dead(p) { "  [dead]" } else { "" };
        println!(
            "  {p}: {:5} meals, worst wait {:4} steps{dead}",
            engine.metrics().eats_of(p),
            engine.metrics().max_response(p),
        );
    }

    let colors = Colors::compute(&engine.snapshot());
    println!("\nred (blocked) processes: {:?}", colors.red_set());
    println!(
        "starvation radius around the crash: {:?} (paper: <= 2)",
        starvation_radius(&engine, after_fault)
    );
    println!(
        "steps with two live neighbors eating after the fault window: {}",
        engine
            .metrics()
            .violation_steps()
            .iter()
            .filter(|&&s| s > after_fault)
            .count()
    );
}
