//! The §4 message-passing transformation running on real OS threads:
//! one thread per philosopher, crossbeam channels as links, the K-state
//! handshake keeping every link alive and exactly-once — under a hostile
//! network (loss, duplication, delay, reordering on every link).
//!
//! ```sh
//! cargo run --release --example message_passing_demo
//! ```

use std::time::Duration;

use malicious_diners::mp::{AdversaryPlan, ThreadRuntime};
use malicious_diners::sim::graph::{ProcessId, Topology};

fn main() {
    let topo = Topology::ring(6);
    let plan = AdversaryPlan::new()
        .loss(100)
        .duplication(100)
        .delay(150, 4)
        .reorder(100);
    println!(
        "spawning {} philosopher threads on a {} behind a network adversary ({}) ...",
        topo.len(),
        topo.name(),
        plan.describe()
    );
    let rt = ThreadRuntime::spawn_with_adversary(topo, Duration::from_micros(200), plan, 1);

    println!("process-fault-free for 300 ms, sampling exclusion every 100 µs ...");
    let violations = rt.observe(Duration::from_millis(300), Duration::from_micros(100));
    let baseline: Vec<u64> = rt.topology().processes().map(|p| rt.meals_of(p)).collect();
    println!("  sampled exclusion violations: {violations}");
    println!("  meals so far: {baseline:?}");

    let victim = ProcessId(2);
    println!("\ninjecting a malicious crash at {victim} (8 arbitrary turns, then halt) ...");
    rt.malicious_crash(victim, 8);
    std::thread::sleep(Duration::from_millis(100));

    let mark: Vec<u64> = rt.topology().processes().map(|p| rt.meals_of(p)).collect();
    std::thread::sleep(Duration::from_millis(400));

    println!("meal progress in the 400 ms after the crash settled:");
    for p in rt.topology().processes() {
        let delta = rt.meals_of(p) - mark[p.index()];
        let d = rt.topology().distance(p, victim);
        let status = if rt.is_dead(p) {
            " [dead]".to_string()
        } else if delta == 0 {
            format!(" starved (distance {d})")
        } else {
            format!(" +{delta} meals (distance {d})")
        };
        println!("  {p}:{status}");
    }

    // Processes at distance >= 3 keep being served.
    for p in rt.topology().processes() {
        if !rt.is_dead(p) && rt.topology().distance(p, victim) >= 3 {
            assert!(
                rt.meals_of(p) > mark[p.index()],
                "{p} starved though far from the crash"
            );
        }
    }
    println!("\nall philosophers at distance >= 3 kept eating. ✓");
    rt.shutdown();
}
