//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses. It runs each benchmark closure a small, fixed number of times and
//! prints a ns/iter estimate — enough for `cargo bench` smoke runs and for
//! `--all-targets` builds to compile, without the real crate's dependency
//! tree (unavailable: the build environment has no network access).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// An opaque-to-the-optimizer identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            _c: self,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), DEFAULT_SAMPLES, &mut f);
        self
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.samples, &mut f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples as u64,
        elapsed_ns: 0,
        measured_iters: 0,
    };
    f(&mut b);
    if let Some(per_iter) = b.elapsed_ns.checked_div(b.measured_iters) {
        println!("bench {label:<50} {per_iter:>12} ns/iter");
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
    measured_iters: u64,
}

impl Bencher {
    /// Measure `routine` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.measured_iters += self.iters;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("inner", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs >= 3);
    }
}
