//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a minimal, API-compatible stand-in instead of the
//! real crate. Everything here is deterministic: [`rngs::StdRng`] is a
//! splitmix64 generator (the same mixer `rand` itself uses to expand
//! `seed_from_u64` seeds), which is statistically solid for simulation
//! and test workloads, though **not** cryptographically secure and not
//! bit-compatible with upstream `StdRng` streams.
//!
//! Supported surface: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range` (half-open and inclusive
//! integer/float ranges) and `gen_bool`.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace-standard deterministic generator (splitmix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so that nearby seeds yield unrelated streams.
            StdRng {
                state: mix(state ^ GOLDEN_GAMMA),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(GOLDEN_GAMMA);
            mix(self.state)
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types usable as the element of a [`Rng::gen_range`] range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[low, high)` (`high` exclusive).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draw uniformly from `[low, high]` (`high` inclusive).
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + draw) as $t
            }

            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }

    #[inline]
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, high)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator methods, after `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    #[inline]
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        assert_ne!(
            StdRng::seed_from_u64(1).gen::<u64>(),
            StdRng::seed_from_u64(2).gen::<u64>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(0..7usize);
            assert!(x < 7);
            let y = r.gen_range(0..=9u32);
            assert!(y <= 9);
            let z = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&z));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.25).abs() < 0.03, "empirical p = {p}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut r = StdRng::seed_from_u64(0);
        r.gen_bool(1.5);
    }
}
