//! Offline shim for the subset of the `crossbeam` 0.8 API this workspace
//! uses: `channel::{unbounded, Sender, Receiver, RecvTimeoutError}` and
//! `thread::scope`.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a minimal, API-compatible stand-in. The channel
//! is a straightforward `Mutex<VecDeque>` + `Condvar` MPMC queue — ample
//! for the thread-per-node runtime's traffic — and scoped threads are a
//! thin wrapper over `std::thread::scope`.

#![warn(missing_docs)]

/// Scoped threads with the crossbeam 0.8 calling convention, backed by
/// `std::thread::scope`.
///
/// One deviation: crossbeam returns `Err` when an *unjoined* spawned
/// thread panicked, while this shim (like std) propagates such panics.
/// Callers that join every handle — all callers in this workspace —
/// observe identical behavior.
pub mod thread {
    use std::any::Any;
    use std::thread;

    /// Result of joining a (possibly panicked) thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread, allowing further borrowing spawns.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope thread::Scope<'scope, 'env>,
    }

    /// Owned handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish and return its value (or its
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope. The
        /// closure receives the scope again (crossbeam convention) so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope in which threads can borrow non-`'static` data;
    /// every spawned thread is joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_the_scope_argument() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }
    }
}

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be sent because the channel is disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Why a blocking receive gave up.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The channel is empty and every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.chan
                .queue
                .lock()
                .expect("channel poisoned")
                .push_back(msg);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.chan.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .ready
                    .wait_timeout(queue, left)
                    .expect("channel poisoned");
                queue = guard;
            }
        }

        /// Dequeue a message, blocking until one arrives or all senders
        /// are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.chan.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Dequeue a message if one is already waiting.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 100 {
                got.push(rx.recv_timeout(Duration::from_secs(1)).unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
