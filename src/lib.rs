//! # Dining Philosophers that Tolerate Malicious Crashes
//!
//! A complete Rust implementation and experimental reproduction of
//! **Nesterenko & Arora, ICDCS 2002**: a self-stabilizing solution to the
//! dining-philosophers problem with *optimal crash failure locality 2*
//! under **malicious crashes** — faults in which a process behaves
//! arbitrarily (within its write capability) for a finite time and then
//! halts, undetectably to its neighbors.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`sim`] (`diners-sim`) — the guarded-command shared-memory
//!   simulation substrate: topologies, weakly fair daemons, the fault
//!   model (benign/malicious crash, transient, initially dead), a
//!   deterministic engine with service metrics, predicates.
//! * [`core`] (`diners-core`) — the paper's five-action algorithm
//!   (Figure 1), its predicates (`NC`, `SH`, `ST`, `E`, invariant `I`),
//!   the red/green blocked-set fixpoint, failure-locality measurement,
//!   the MCA-problem checker, and the exact Figure 2 reproduction.
//! * [`baselines`] (`diners-baselines`) — ablated variants (no dynamic
//!   threshold, no cycle breaking), a greedy diner and a Chandy–Misra
//!   style hygienic diner for comparison experiments.
//! * [`mp`] (`diners-mp`) — the §4 message-passing transformation:
//!   K-state handshake per link, fork-token exclusion core, deterministic
//!   simulated network and a real thread-per-node runtime.
//!
//! ## Quick start
//!
//! ```
//! use malicious_diners::core::MaliciousCrashDiners;
//! use malicious_diners::sim::{Engine, FaultPlan, Topology};
//! use malicious_diners::sim::scheduler::RandomScheduler;
//!
//! // 16 philosophers on a ring; one maliciously crashes at step 2000.
//! let mut engine = Engine::builder(MaliciousCrashDiners::paper(), Topology::ring(16))
//!     .scheduler(RandomScheduler::new(42))
//!     .faults(FaultPlan::new().malicious_crash(2_000, 5, 16))
//!     .seed(42)
//!     .build();
//! engine.run(50_000);
//!
//! // Only the crash's distance-2 neighborhood can be affected; everyone
//! // else keeps eating and no two live neighbors ever eat at once after
//! // the fault window.
//! let far = malicious_diners::sim::graph::ProcessId(13);
//! assert!(engine.metrics().eats_of(far) > 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and theorem, and the
//! `examples/` directory for runnable scenarios.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use diners_baselines as baselines;
pub use diners_core as core;
pub use diners_mp as mp;
pub use diners_sim as sim;
