//! `dinerlab` — command-line laboratory for the malicious-crash diners.
//!
//! ```text
//! dinerlab fig2
//! dinerlab run       [--topo ring:16] [--steps 50000] [--seed 42] [--crash 5@2000:16]
//! dinerlab stabilize [--topo grid:4x4] [--seed 1] [--corrected]
//! dinerlab locality  [--n 16] [--no-threshold]
//! ```
//!
//! Argument parsing is intentionally dependency-free.

use std::process::exit;

use malicious_diners::core::figures::run_figure2;
use malicious_diners::core::harness::stabilization_steps;
use malicious_diners::core::locality::measure_window;
use malicious_diners::core::redgreen::Colors;
use malicious_diners::core::{MaliciousCrashDiners, Variant};
use malicious_diners::sim::graph::Topology;
use malicious_diners::sim::scheduler::RandomScheduler;
use malicious_diners::sim::{Engine, FaultPlan, Phase, SystemState};

fn usage() -> ! {
    eprintln!(
        "usage: dinerlab <command> [options]\n\
         \n\
         commands:\n\
         \x20 fig2                         replay the paper's Figure 2\n\
         \x20 run        simulate with optional malicious crash\n\
         \x20 stabilize  measure convergence from an arbitrary state\n\
         \x20 locality   measure the starvation radius around a crash\n\
         \n\
         options:\n\
         \x20 --topo <ring|line|star|complete>:<n> | grid:<w>x<h>   (default ring:16)\n\
         \x20 --steps <u64>          simulation steps (default 50000)\n\
         \x20 --seed <u64>           RNG seed (default 42)\n\
         \x20 --crash <pid>@<step>:<k>   malicious crash: k arbitrary steps\n\
         \x20 --corrected            use the corrected n cycle-evidence bound\n\
         \x20 --no-threshold         disable the dynamic threshold (ablation)\n\
         \x20 --n <usize>            size for `locality` (default 16)"
    );
    exit(2)
}

struct Opts {
    topo: Topology,
    steps: u64,
    seed: u64,
    crash: Option<(usize, u64, u32)>,
    corrected: bool,
    no_threshold: bool,
    n: usize,
}

fn parse_topo(spec: &str) -> Option<Topology> {
    let (kind, rest) = spec.split_once(':')?;
    match kind {
        "ring" => Some(Topology::ring(rest.parse().ok()?)),
        "line" => Some(Topology::line(rest.parse().ok()?)),
        "star" => Some(Topology::star(rest.parse().ok()?)),
        "complete" => Some(Topology::complete(rest.parse().ok()?)),
        "tree" => Some(Topology::binary_tree(rest.parse().ok()?)),
        "grid" => {
            let (w, h) = rest.split_once('x')?;
            Some(Topology::grid(w.parse().ok()?, h.parse().ok()?))
        }
        _ => None,
    }
}

fn parse_crash(spec: &str) -> Option<(usize, u64, u32)> {
    let (pid, rest) = spec.split_once('@')?;
    let (step, k) = rest.split_once(':')?;
    Some((pid.parse().ok()?, step.parse().ok()?, k.parse().ok()?))
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        topo: Topology::ring(16),
        steps: 50_000,
        seed: 42,
        crash: None,
        corrected: false,
        no_threshold: false,
        n: 16,
    };
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--topo" => {
                o.topo = parse_topo(need(i)).unwrap_or_else(|| usage());
                i += 2;
            }
            "--steps" => {
                o.steps = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                o.seed = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--crash" => {
                o.crash = Some(parse_crash(need(i)).unwrap_or_else(|| usage()));
                i += 2;
            }
            "--n" => {
                o.n = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--corrected" => {
                o.corrected = true;
                i += 1;
            }
            "--no-threshold" => {
                o.no_threshold = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    o
}

fn algorithm(o: &Opts) -> MaliciousCrashDiners {
    let mut v = if o.corrected {
        Variant::corrected()
    } else {
        Variant::paper()
    };
    if o.no_threshold {
        v.dynamic_threshold = false;
    }
    MaliciousCrashDiners::with_variant(v)
}

fn cmd_fig2() {
    let report = run_figure2();
    for line in &report.narrative {
        println!("{line}");
    }
    println!(
        "\nall properties reproduced: {} (radius {:?})",
        report.all_reproduced(),
        report.affected_radius
    );
    if !report.all_reproduced() {
        exit(1);
    }
}

fn cmd_run(o: &Opts) {
    let mut faults = FaultPlan::none();
    if let Some((pid, step, k)) = o.crash {
        faults = faults.malicious_crash(step, pid, k);
    }
    let mut engine = Engine::builder(algorithm(o), o.topo.clone())
        .scheduler(RandomScheduler::new(o.seed))
        .faults(faults)
        .seed(o.seed)
        .build();
    engine.run(o.steps);
    println!(
        "{} on {} for {} steps (seed {})",
        malicious_diners::sim::Algorithm::name(engine.algorithm()),
        o.topo.name(),
        o.steps,
        o.seed
    );
    let colors = Colors::compute(&engine.snapshot());
    for p in engine.topology().processes() {
        let status = if engine.is_dead(p) {
            "dead"
        } else if colors.is_red(p) {
            "red"
        } else {
            "green"
        };
        println!(
            "  {p}: {:6} meals, worst wait {:5}, {status}",
            engine.metrics().eats_of(p),
            engine.metrics().max_response(p)
        );
    }
    println!(
        "exclusion violations: {} steps (last {:?})",
        engine.metrics().violation_step_count(),
        engine.metrics().last_violation_step()
    );
}

fn cmd_stabilize(o: &Opts) {
    match stabilization_steps(algorithm(o), o.topo.clone(), o.seed, o.steps) {
        Some(at) => println!(
            "stabilized to I at step {at} (held through the {}-step horizon)",
            o.steps
        ),
        None => {
            println!("did NOT stabilize within {} steps", o.steps);
            exit(1);
        }
    }
}

fn cmd_locality(o: &Opts) {
    let topo = Topology::line(o.n);
    let alg = algorithm(o);
    let mut state = SystemState::initial(&alg, &topo);
    for p in topo.processes() {
        state.local_mut(p).phase = Phase::Hungry;
    }
    state.local_mut(0.into()).phase = Phase::Eating;
    let mut engine = Engine::builder(alg, topo)
        .initial_state(state)
        .scheduler(RandomScheduler::new(o.seed))
        .faults(FaultPlan::new().initially_dead(0))
        .seed(o.seed)
        .build();
    engine.run(o.steps / 2);
    let report = measure_window(&mut engine, o.steps / 2);
    println!(
        "line({}) with p0 dead while eating: starved {:?}, radius {:?}",
        o.n, report.starved, report.behavioral_radius
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let opts = parse(&args[1..]);
    match cmd.as_str() {
        "fig2" => cmd_fig2(),
        "run" => cmd_run(&opts),
        "stabilize" => cmd_stabilize(&opts),
        "locality" => cmd_locality(&opts),
        _ => usage(),
    }
}
